"""Zero-dependency metrics registry: counters, gauges and histograms.

One process-global :class:`Metrics` registry (:func:`get_metrics`) holds
every named metric. The full catalog is pre-registered at import time
(:data:`METRIC_CATALOG`), so a snapshot always contains every metric the
library can emit — zero-valued when its subsystem never ran. The catalog
is the single source of truth for ``docs/metrics.md`` (tested in
``tests/obs/test_metrics.py``).

Thread-safety: every mutation takes the metric's own lock; registration
takes the registry lock. Reads of the registry dict are lock-free (the
dict only grows, never rebinds entries).

Cross-process collection: worker processes accumulate into their *own*
global registry; :meth:`Metrics.snapshot` / :func:`diff_snapshots` /
:meth:`Metrics.merge` move the per-chunk *delta* back to the parent (see
``repro.parallel.transport.run_chunk``). Counters merge by addition,
gauges by maximum, histograms by summing counts/sums/buckets.

Performance contract: hot per-item loops (anti-diagonal rounds of the
simulator, steady-ant recursion nodes) must NOT increment registry
metrics per item — they accumulate locally and flush once per call, or
are harvested at collection time (:func:`repro.obs.collect_machine`).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "METRIC_CATALOG",
    "get_metrics",
    "diff_snapshots",
    "inc",
    "gauge_max",
    "observe",
]


class Counter:
    """A monotonically non-decreasing integer total.

    :meth:`inc` rejects negative amounts, so a counter's value can never
    decrease — the invariant the hypothesis suite checks under chaos
    faults. Thread-safe (per-counter lock); units are whatever ``unit``
    declares (bytes, calls, rounds, ...).
    """

    kind = "counter"
    __slots__ = ("name", "unit", "subsystem", "description", "_value", "_lock")

    def __init__(self, name: str, *, unit: str = "", subsystem: str = "", description: str = ""):
        self.name = name
        self.unit = unit
        self.subsystem = subsystem
        self.description = description
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        if amount:
            with self._lock:
                self._value += amount

    @property
    def value(self) -> int:
        """Current total (lock-free read)."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready dict of metadata + current value."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "subsystem": self.subsystem,
            "description": self.description,
            "value": self._value,
        }

    def reset(self) -> None:
        """Zero the total (test isolation; production counters only grow)."""
        with self._lock:
            self._value = 0

    def merge(self, snap: dict) -> None:
        """Fold a worker-side delta into this counter (addition)."""
        self.inc(int(snap.get("value", 0)))


class Gauge:
    """A point-in-time value; merges across workers by *maximum*.

    Used for high-water marks (peak RSS, maximum recursion depth) and
    end-of-run observations (elapsed seconds). :meth:`set` overwrites,
    :meth:`set_max` keeps the larger value. Thread-safe.
    """

    kind = "gauge"
    __slots__ = ("name", "unit", "subsystem", "description", "_value", "_lock")

    def __init__(self, name: str, *, unit: str = "", subsystem: str = "", description: str = ""):
        self.name = name
        self.unit = unit
        self.subsystem = subsystem
        self.description = description
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if larger (high-water mark)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        """Current value (lock-free read)."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready dict of metadata + current value."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "subsystem": self.subsystem,
            "description": self.description,
            "value": self._value,
        }

    def reset(self) -> None:
        """Reset the gauge to zero."""
        with self._lock:
            self._value = 0.0

    def merge(self, snap: dict) -> None:
        """Fold a worker-side gauge into this one (maximum)."""
        self.set_max(float(snap.get("value", 0.0)))


class Histogram:
    """Power-of-two-bucketed distribution of observed values.

    Bucket ``k`` counts observations in ``[2^k, 2^(k+1))`` (values < 1
    land in bucket 0). Tracks count, sum, min and max exactly; the
    buckets give the shape (e.g. steady-ant multiplication orders).
    Thread-safe; merges across workers by summing counts/sums/buckets.
    """

    kind = "histogram"
    __slots__ = (
        "name", "unit", "subsystem", "description",
        "_count", "_sum", "_min", "_max", "_buckets", "_lock",
    )

    def __init__(self, name: str, *, unit: str = "", subsystem: str = "", description: str = ""):
        self.name = name
        self.unit = unit
        self.subsystem = subsystem
        self.description = description
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _bucket(value: float) -> int:
        if value < 2.0:
            return 0
        return int(value).bit_length() - 1

    def observe(self, value: float) -> None:
        """Record one observation of *value* (in the metric's unit)."""
        b = self._bucket(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._buckets[b] = self._buckets.get(b, 0) + 1

    @property
    def count(self) -> int:
        """Number of observations recorded so far."""
        return self._count

    def snapshot(self) -> dict:
        """JSON-ready dict: metadata, count, sum, min, max, buckets."""
        with self._lock:
            return {
                "kind": self.kind,
                "unit": self.unit,
                "subsystem": self.subsystem,
                "description": self.description,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
            }

    def reset(self) -> None:
        """Clear all observations (count, sum, bounds and buckets)."""
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._buckets.clear()

    def merge(self, snap: dict) -> None:
        """Fold a worker-side histogram delta into this one."""
        with self._lock:
            self._count += int(snap.get("count", 0))
            self._sum += float(snap.get("sum", 0.0))
            for bound in ("min", "max"):
                v = snap.get(bound)
                if v is None:
                    continue
                cur = self._min if bound == "min" else self._max
                if cur is None or (v < cur if bound == "min" else v > cur):
                    if bound == "min":
                        self._min = v
                    else:
                        self._max = v
            for k, v in (snap.get("buckets") or {}).items():
                k = int(k)
                self._buckets[k] = self._buckets.get(k, 0) + int(v)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Metrics:
    """A named registry of :class:`Counter` / :class:`Gauge` /
    :class:`Histogram` instances.

    ``counter()`` / ``gauge()`` / ``histogram()`` get-or-create by name
    (re-registering with a different kind raises). :meth:`snapshot`
    returns a JSON-serializable dict; :meth:`merge` folds a snapshot
    (typically a worker delta) in; :meth:`reset` zeroes every metric but
    keeps the registrations.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()
        #: when True, pool-backed machines request per-chunk metric
        #: deltas from their workers (set by ``repro.obs.observed`` for
        #: the duration of a ``--metrics-out`` run)
        self.remote_collection = False

    def _get_or_create(self, cls, name: str, unit: str, subsystem: str, description: str):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, unit=unit, subsystem=subsystem, description=description)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, *, unit: str = "", subsystem: str = "", description: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, unit, subsystem, description)

    def gauge(self, name: str, *, unit: str = "", subsystem: str = "", description: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, unit, subsystem, description)

    def histogram(self, name: str, *, unit: str = "", subsystem: str = "", description: str = "") -> Histogram:
        """Get or create the histogram *name*."""
        return self._get_or_create(Histogram, name, unit, subsystem, description)

    def get(self, name: str):
        """The metric registered under *name*, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> Iterator[str]:
        """Registered metric names, sorted."""
        return iter(sorted(self._metrics))

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment a pre-registered counter (KeyError if unknown)."""
        self._metrics[name].inc(amount)

    def snapshot(self) -> dict[str, dict]:
        """JSON-serializable state of every registered metric."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def merge(self, snap: dict[str, dict]) -> None:
        """Fold *snap* (a :meth:`snapshot` or a :func:`diff_snapshots`
        delta, e.g. shipped back from a worker process) into this
        registry, creating any metrics it does not know yet."""
        for name, entry in snap.items():
            cls = _KINDS.get(entry.get("kind", "counter"), Counter)
            metric = self._get_or_create(
                cls, name,
                entry.get("unit", ""), entry.get("subsystem", ""), entry.get("description", ""),
            )
            metric.merge(entry)

    def reset(self) -> None:
        """Zero every metric; registrations survive."""
        for metric in list(self._metrics.values()):
            metric.reset()

    def write_json(self, path: str, *, extra: dict | None = None) -> None:
        """Write ``{"version": 1, "metrics": snapshot(), **extra}``."""
        doc = {"version": 1, "metrics": self.snapshot()}
        if extra:
            doc.update(extra)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")


def diff_snapshots(after: dict[str, dict], before: dict[str, dict]) -> dict[str, dict]:
    """The per-metric delta ``after - before`` (worker-chunk accounting).

    Counters subtract values; histograms subtract counts/sums/buckets
    (min/max keep *after*'s bounds — merge-approximate); gauges keep
    *after*'s value (max-merge absorbs them correctly). Metrics absent
    from *before* pass through whole; unchanged zero counters are
    dropped to keep chunk payloads small.
    """
    delta: dict[str, dict] = {}
    for name, a in after.items():
        b = before.get(name)
        kind = a.get("kind", "counter")
        if b is None:
            delta[name] = a
            continue
        if kind == "counter":
            d = a.get("value", 0) - b.get("value", 0)
            if d:
                delta[name] = {**a, "value": d}
        elif kind == "gauge":
            if a.get("value") != b.get("value"):
                delta[name] = a
        else:  # histogram
            d_count = a.get("count", 0) - b.get("count", 0)
            if d_count:
                buckets = {
                    k: v - (b.get("buckets") or {}).get(k, 0)
                    for k, v in (a.get("buckets") or {}).items()
                }
                delta[name] = {
                    **a,
                    "count": d_count,
                    "sum": a.get("sum", 0.0) - b.get("sum", 0.0),
                    "buckets": {k: v for k, v in buckets.items() if v},
                }
    return delta


#: Every metric the library emits: (name, kind, unit, subsystem,
#: description). ``docs/metrics.md`` renders this table and the test
#: suite keeps the two in sync.
METRIC_CATALOG: tuple[tuple[str, str, str, str, str], ...] = (
    ("combing.leaf_calls", "counter", "calls", "core.combing",
     "Invocations of the vectorized iterative combing leaf (semi_antidiag_SIMD)."),
    ("combing.leaf_cells", "counter", "cells", "core.combing",
     "Grid cells combed by iterative leaves (m*n per leaf call)."),
    ("combing.grid_leaves", "counter", "blocks", "core.combing",
     "Sub-block leaf combings submitted by grid combing (Listing 7)."),
    ("combing.grid_composes", "counter", "compositions", "core.combing",
     "Kernel compositions performed by the grid reduction tree."),
    ("combing.compose_order", "histogram", "strands", "core.combing",
     "Order (m+n) of each kernel composition (Theorem 3.4)."),
    ("combing.wavefront_rounds", "counter", "rounds", "core.combing",
     "Anti-diagonal rounds submitted by wavefront combing (Listing 4)."),
    ("steady_ant.multiplies", "counter", "calls", "core.steady_ant",
     "Top-level steady-ant braid multiplications (steady_ant_combined)."),
    ("steady_ant.base_case_hits", "counter", "calls", "core.steady_ant",
     "Recursion leaves answered by the precalc table (sequential switch, paper section 5.1)."),
    ("steady_ant.max_depth", "gauge", "levels", "core.steady_ant",
     "Deepest steady-ant recursion observed (high-water mark)."),
    ("steady_ant.order", "histogram", "strands", "core.steady_ant",
     "Order n of each top-level steady-ant multiplication."),
    ("steady_ant.parallel_rounds", "counter", "rounds", "core.steady_ant",
     "Parallel rounds (leaf round + combine levels) run by steady_ant_parallel (Listing 5)."),
    ("steady_ant.parallel_leaves", "counter", "tasks", "core.steady_ant",
     "Leaf sub-multiplications submitted by steady_ant_parallel."),
    ("steady_ant.precalc_builds", "counter", "tables", "core.steady_ant",
     "PrecalcTable constructions — at most one per (process, max_order) under the warm-once guard."),
    ("steady_ant.precalc_hits", "counter", "calls", "core.steady_ant",
     "get_precalc_table calls answered by the already-built shared table."),
    ("steady_ant.vectorized_multiplies", "counter", "calls", "core.steady_ant",
     "Top-level level-vectorized steady-ant multiplications (steady_ant_vectorized)."),
    ("steady_ant.vectorized_base_hits", "counter", "lanes", "core.steady_ant",
     "Recursion leaves answered by the batched dense (min,+) base kernel (lanes across all levels)."),
    ("steady_ant.vectorized_levels", "counter", "levels", "core.steady_ant",
     "Recursion levels expanded breadth-first by the vectorized steady ant."),
    ("steady_ant.vectorized_plan_builds", "counter", "plans", "core.steady_ant",
     "Cold growths of the shared index buffer behind the batched kernels (zero after warm_compute_kernels)."),
    ("compute.fused_tasks", "counter", "tasks", "core.combing",
     "Multi-op fused tasks submitted by grid combing (adjacent levels merged under the payload budget)."),
    ("compute.rounds_saved", "counter", "rounds", "core.combing",
     "Machine rounds eliminated by fusing adjacent combing levels or wavefront anti-diagonals."),
    ("compute.pipelined_rounds", "counter", "rounds", "core.combing",
     "Grid rounds submitted while a previous round was still draining (double-buffered overlap)."),
    ("compute.multi_diag_calls", "counter", "calls", "core.bitparallel",
     "Bit-parallel LCS calls served by the multi-diagonal carry-adder column sweep."),
    ("batch.pairs", "counter", "pairs", "batch",
     "String pairs accepted by the batched throughput engine."),
    ("batch.megabatches", "counter", "batches", "batch",
     "Shape-bucketed megabatches dispatched by the BatchScheduler."),
    ("batch.lanes", "histogram", "lanes", "batch",
     "Lane count (batch width B) of each dispatched megabatch."),
    ("batch.padded_cells", "counter", "cells", "batch",
     "Grid cells combed by lockstep kernels including shape-bucket padding (M*N per lane)."),
    ("batch.real_cells", "counter", "cells", "batch",
     "Real (unpadded) grid cells covered by lockstep combing (sum of m*n over lanes)."),
    ("batch.fallback_pairs", "counter", "pairs", "batch",
     "Pairs routed through the per-pair fallback path (algorithms without a lockstep kernel)."),
    ("batch.pipeline_depth", "gauge", "rounds", "batch",
     "Deepest submit/drain round pipeline the BatchScheduler reached (high-water mark)."),
    ("bitparallel.calls", "counter", "calls", "core.bitparallel",
     "Bit-parallel LCS computations (sequential bit_lcs)."),
    ("bitparallel.rounds", "counter", "rounds", "core.bitparallel",
     "Block-anti-diagonal rounds run by bit_lcs_parallel."),
    ("bitparallel.blocks", "counter", "blocks", "core.bitparallel",
     "Word blocks processed by bit_lcs_parallel across all rounds."),
    ("machine.rounds", "counter", "rounds", "parallel",
     "Rounds submitted to pool-backed machines (ProcessMachine, ThreadMachine)."),
    ("machine.tasks", "counter", "tasks", "parallel",
     "Tasks submitted to pool-backed machines."),
    ("machine.rebuilds", "counter", "events", "parallel",
     "Worker-pool replacements (ProcessMachine/ThreadMachine rebuild)."),
    ("machine.elapsed_seconds", "gauge", "seconds", "parallel",
     "Machine-accounted elapsed time, harvested by collect_machine at run end."),
    ("machine.inproc_rounds", "gauge", "rounds", "parallel",
     "Rounds run by an in-process machine (Serial/Simulated), harvested by collect_machine."),
    ("machine.inproc_tasks", "gauge", "tasks", "parallel",
     "Tasks run by an in-process machine, harvested by collect_machine."),
    ("transport.bytes_shipped", "counter", "bytes", "parallel.transport",
     "Serialized bytes shipped to worker processes (exact, per chunk payload)."),
    ("transport.bytes_returned", "counter", "bytes", "parallel.transport",
     "Serialized bytes returned from worker processes."),
    ("transport.fallbacks", "counter", "events", "parallel.transport",
     "Shared-memory-to-pickle transport degradations."),
    ("transport.slab_allocs", "counter", "segments", "parallel.transport",
     "Fresh slab segments allocated by SharedArena.slab (pool misses)."),
    ("transport.slab_reuses", "counter", "segments", "parallel.transport",
     "Slab requests satisfied from the arena's free pool (no new segment)."),
    ("checkpoint.hits", "counter", "artifacts", "checkpoint",
     "Verified kernel-store reads that found a valid artifact."),
    ("checkpoint.misses", "counter", "artifacts", "checkpoint",
     "Kernel-store reads that found nothing and forced a recompute."),
    ("checkpoint.corrupt", "counter", "artifacts", "checkpoint",
     "Artifacts that failed integrity verification on read."),
    ("checkpoint.writes", "counter", "artifacts", "checkpoint",
     "Kernel artifacts durably committed."),
    ("checkpoint.bytes_written", "counter", "bytes", "checkpoint",
     "Payload bytes durably committed to the kernel store."),
    ("store.evictions", "counter", "artifacts", "checkpoint",
     "Artifacts evicted by the LRU cache mode to stay under max_bytes."),
    ("store.hit_rate", "gauge", "ratio", "checkpoint",
     "Running kernel-store hit rate (hits / lookups), exported on every lookup."),
    ("store.cache_bytes", "gauge", "bytes", "checkpoint",
     "Bytes held by a cache-mode kernel store after its last budget enforcement."),
    ("query.requests", "counter", "queries", "query",
     "Semi-local queries answered by a QueryEngine (every op, hit or miss)."),
    ("query.kernel_hits", "counter", "kernels", "query",
     "Queries answered from an already-cached kernel (memory LRU or backing store)."),
    ("query.kernel_misses", "counter", "kernels", "query",
     "Queries that had to build (or compose) the pair's kernel first."),
    ("query.kernel_builds", "counter", "kernels", "query",
     "Fresh semi-local kernels combed on behalf of the query tier."),
    ("query.appends", "counter", "kernels", "query",
     "Extended kernels produced by Theorem 3.4 append-composition instead of a recompute."),
    ("query.prepends", "counter", "kernels", "query",
     "Extended kernels produced by the Theorem 3.5 flip of the append composition "
     "(prefix combed, composed above the cached kernel)."),
    ("kernel.counter_builds", "counter", "structures", "core.kernel",
     "Dominance-counting structures constructed from scratch (a store hit that "
     "ships a persisted counter skips this)."),
    ("kernel.probe_batches", "counter", "batches", "core.kernel",
     "Batched dominance probes (count_many calls) answered by semi-local kernels."),
    ("kernel.probes", "counter", "probes", "core.kernel",
     "Individual dominance counts answered through batched count_many probes."),
    ("resilience.retries", "counter", "attempts", "parallel.resilient",
     "Per-task re-executions after a failed round."),
    ("resilience.task_failures", "counter", "events", "parallel.resilient",
     "Task/round failures observed by the resilience layer."),
    ("resilience.timeouts", "counter", "events", "parallel.resilient",
     "Task attempts lost to the fault policy's timeout."),
    ("resilience.recovered_rounds", "counter", "rounds", "parallel.resilient",
     "Rounds completed via per-task recovery after an initial failure."),
    ("resilience.degraded_rounds", "counter", "rounds", "parallel.resilient",
     "Rounds that fell back to serial execution."),
    ("resilience.pool_rebuilds", "counter", "events", "parallel.resilient",
     "Broken worker pools replaced before retrying."),
    ("resilience.durable_recoveries", "counter", "tasks", "parallel.resilient",
     "Failed tasks recovered from the durable checkpoint ledger instead of recomputed."),
    ("chaos.injected_failures", "counter", "events", "parallel.chaos",
     "Task failures injected by ChaosMachine."),
    ("chaos.injected_crashes", "counter", "events", "parallel.chaos",
     "Simulated worker crashes injected by ChaosMachine."),
    ("chaos.injected_delays", "counter", "events", "parallel.chaos",
     "Task stalls injected by ChaosMachine."),
    ("process.peak_rss_bytes", "gauge", "bytes", "obs.profile",
     "Peak resident set size of this process (high-water mark, ru_maxrss)."),
    ("serve.requests", "counter", "requests", "serve",
     "Protocol requests received by the batching daemon (every type, before admission)."),
    ("serve.admitted", "counter", "requests", "serve",
     "Scoring requests accepted into the bounded admission queue."),
    ("serve.shed", "counter", "requests", "serve",
     "Requests answered with the structured 'overloaded' error because the admission queue was full."),
    ("serve.quota_rejected", "counter", "requests", "serve",
     "Requests answered with 'quota_exhausted' by the per-client token bucket."),
    ("serve.deadline_expired", "counter", "requests", "serve",
     "Admitted requests whose deadline passed while queued (answered, never computed)."),
    ("serve.drained", "counter", "requests", "serve",
     "Accepted requests completed after a graceful drain began (the zero-drop guarantee, counted)."),
    ("serve.batches", "counter", "batches", "serve",
     "Continuous-batching flushes dispatched to the warm engine."),
    ("serve.queue_depth", "gauge", "requests", "serve",
     "Admission queue depth, sampled at every enqueue and flush."),
    ("serve.batch_occupancy", "histogram", "requests", "serve",
     "Requests coalesced into each continuous-batching flush (occupancy > 1 means batching pays)."),
    ("serve.query_requests", "counter", "requests", "serve",
     "Semi-local 'query' requests received by the daemon."),
    ("serve.query_hits", "counter", "requests", "serve",
     "Query requests answered from a cached kernel, bypassing the batcher entirely."),
    ("serve.query_misses", "counter", "requests", "serve",
     "Query requests whose kernel build rode a continuous-batching flush."),
)


def _register_catalog(metrics: "Metrics") -> None:
    for name, kind, unit, subsystem, description in METRIC_CATALOG:
        getattr(metrics, kind)(name, unit=unit, subsystem=subsystem, description=description)


_GLOBAL = Metrics()
_register_catalog(_GLOBAL)


def get_metrics() -> Metrics:
    """The process-global registry (workers each have their own)."""
    return _GLOBAL


def inc(name: str, amount: int = 1) -> None:
    """Increment a cataloged counter on the global registry."""
    _GLOBAL.inc(name, amount)


def gauge_max(name: str, value: float) -> None:
    """Raise a cataloged gauge's high-water mark on the global registry."""
    _GLOBAL._metrics[name].set_max(value)


def observe(name: str, value: float) -> None:
    """Record *value* in a cataloged histogram on the global registry."""
    _GLOBAL._metrics[name].observe(value)
