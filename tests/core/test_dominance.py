"""Tests for the dominance-counting query structures."""

import numpy as np
import pytest

from repro.core.dist_matrix import dominance_count
from repro.core.dominance import DenseCounter, DominanceCounter, WaveletCounter, make_counter


@pytest.mark.parametrize("counter_cls", [DenseCounter, DominanceCounter, WaveletCounter])
class TestCounters:
    def test_empty(self, counter_cls):
        c = counter_cls(np.array([], dtype=np.int64))
        assert c.count(0, 0) == 0
        assert c.n == 0

    def test_singleton(self, counter_cls):
        c = counter_cls(np.array([0]))
        assert c.count(0, 1) == 1
        assert c.count(1, 1) == 0
        assert c.count(0, 0) == 0

    def test_matches_direct_count(self, counter_cls, rng):
        for n in (2, 3, 7, 16, 31, 64, 100):
            p = rng.permutation(n)
            c = counter_cls(p)
            for _ in range(50):
                i = int(rng.integers(0, n + 1))
                j = int(rng.integers(0, n + 1))
                assert c.count(i, j) == dominance_count(p, i, j), (n, i, j)

    def test_clamps_out_of_range(self, counter_cls, rng):
        p = rng.permutation(9)
        c = counter_cls(p)
        assert c.count(-5, 100) == 9
        assert c.count(100, -5) == 0

    def test_full_rectangle(self, counter_cls, rng):
        p = rng.permutation(12)
        assert counter_cls(p).count(0, 12) == 12


class TestMergeSortTreeInternals:
    def test_count_many(self, rng):
        p = rng.permutation(20)
        c = DominanceCounter(p)
        out = c.count_many(np.array([0, 5, 20]), np.array([20, 7, 0]))
        assert out.tolist() == [20, c.count(5, 7), 0]

    def test_non_power_of_two_sizes(self, rng):
        # exercises ragged tail blocks in the level construction
        for n in (3, 5, 6, 9, 17, 33, 63):
            p = rng.permutation(n)
            c = DominanceCounter(p)
            for i in range(0, n + 1, max(1, n // 7)):
                for j in range(0, n + 1, max(1, n // 7)):
                    assert c.count(i, j) == dominance_count(p, i, j)


class TestMakeCounter:
    def test_threshold_selects_implementation(self):
        small = make_counter(np.arange(4), dense_threshold=8)
        large = make_counter(np.arange(16), dense_threshold=8)
        assert isinstance(small, DenseCounter)
        assert isinstance(large, WaveletCounter)

    def test_explicit_kind_wins(self):
        tree = make_counter(np.arange(4), dense_threshold=8, kind="merge-sort-tree")
        assert isinstance(tree, DominanceCounter)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COUNTER", "merge-sort-tree")
        assert isinstance(make_counter(np.arange(4), dense_threshold=8), DominanceCounter)
        # explicit kind beats the env var
        assert isinstance(
            make_counter(np.arange(4), dense_threshold=8, kind="dense"), DenseCounter
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            make_counter(np.arange(4), kind="btree")


class TestWaveletInternals:
    def test_levels_count(self, rng):
        p = rng.permutation(33)
        w = WaveletCounter(p)
        # 33 values need 6 bits
        assert len(w._levels) == 6

    def test_singleton_and_empty(self):
        import numpy as np

        assert WaveletCounter(np.array([], dtype=np.int64)).count(0, 0) == 0
        w = WaveletCounter(np.array([0]))
        assert w.count(0, 1) == 1

    def test_non_power_of_two(self, rng):
        from repro.core.dist_matrix import dominance_count

        for n in (3, 5, 31, 33, 100):
            p = rng.permutation(n)
            w = WaveletCounter(p)
            for i in range(0, n + 1, max(1, n // 9)):
                for j in range(0, n + 1, max(1, n // 9)):
                    assert w.count(i, j) == dominance_count(p, i, j)
