"""Tests for the LCS-based diff application."""

import pytest

from repro.apps.diff import DiffOp, diff, diff_lines, similarity, unified


def apply_ops(ops):
    """Replay an edit script; returns (reconstructed_a, reconstructed_b)."""
    a = [op.value for op in ops if op.kind in ("=", "-")]
    b = [op.value for op in ops if op.kind in ("=", "+")]
    return a, b


class TestDiff:
    def test_roundtrip_strings(self):
        a, b = "kitten", "sitting"
        ops = diff(a, b)
        ra, rb = apply_ops(ops)
        assert "".join(ra) == a
        assert "".join(rb) == b

    def test_minimality(self):
        from repro.baselines.prefix_lcs import prefix_lcs_rowmajor

        a, b = "abcabba", "cbabac"
        ops = diff(a, b)
        kept = sum(1 for op in ops if op.kind == "=")
        assert kept == prefix_lcs_rowmajor(a, b)

    def test_identical(self):
        ops = diff("same", "same")
        assert all(op.kind == "=" for op in ops)

    def test_disjoint(self):
        ops = diff("aa", "bb")
        kinds = [op.kind for op in ops]
        assert kinds.count("-") == 2 and kinds.count("+") == 2 and "=" not in kinds

    def test_empty_sides(self):
        assert [op.kind for op in diff("", "ab")] == ["+", "+"]
        assert [op.kind for op in diff("ab", "")] == ["-", "-"]

    def test_integer_sequences(self):
        ops = diff([1, 2, 3], [2, 3, 4])
        ra, rb = apply_ops(ops)
        assert ra == [1, 2, 3] and rb == [2, 3, 4]

    def test_random_roundtrip(self, rng):
        for _ in range(20):
            a = rng.integers(0, 4, size=int(rng.integers(0, 20))).tolist()
            b = rng.integers(0, 4, size=int(rng.integers(0, 20))).tolist()
            ra, rb = apply_ops(diff(a, b))
            assert ra == a and rb == b


class TestDiffLines:
    def test_line_diff(self):
        a = "alpha\nbeta\ngamma"
        b = "alpha\ngamma\ndelta"
        ops = diff_lines(a, b)
        ra, rb = apply_ops(ops)
        assert ra == a.splitlines()
        assert rb == b.splitlines()
        assert DiffOp("-", "beta") in ops
        assert DiffOp("+", "delta") in ops

    def test_unified_rendering(self):
        text = unified(diff_lines("a\nb", "a\nc"))
        assert " a" in text and "-b" in text and "+c" in text


class TestSimilarity:
    def test_bounds(self, rng):
        a = rng.integers(0, 3, size=15)
        b = rng.integers(0, 3, size=20)
        assert 0.0 <= similarity(a, b) <= 1.0

    def test_identical_is_one(self):
        assert similarity("abc", "abc") == 1.0

    def test_empty_both(self):
        assert similarity("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert similarity("aa", "bb") == 0.0
