"""Bulk-synchronous parallel (BSP) cost accounting.

The paper's parallel braid multiplication descends from Tiskin's BSP
algorithms [25] in Valiant's model [26]: an execution is a sequence of
*supersteps*, each costing ``w + g * h + l`` where ``w`` is the maximum
local computation of any processor, ``h`` the maximum number of words
any processor sends or receives (the *h-relation*), ``g`` the machine's
communication throughput cost per word, and ``l`` its barrier latency.

:class:`BSPCostModel` records supersteps (computation measured, data
volumes counted) and prices the run for any ``(p, g, l)`` machine — the
standard way BSP papers compare algorithms without running on every
machine. :func:`bsp_cost_of_steady_ant` instruments the task-parallel
steady ant and returns its BSP profile, separating the three terms the
paper's §4.2.1 discussion is about: parallel leaf work, sequential
combine work, and the data exchanged between levels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Superstep:
    """One recorded superstep: measured work + counted communication."""

    label: str
    comp_per_proc: tuple[float, ...]  # measured seconds per processor
    words_per_proc: tuple[int, ...]  # words sent+received per processor

    @property
    def w(self) -> float:
        return max(self.comp_per_proc) if self.comp_per_proc else 0.0

    @property
    def h(self) -> int:
        return max(self.words_per_proc) if self.words_per_proc else 0


@dataclass
class BSPCostModel:
    """Collects supersteps; prices them for arbitrary (g, l)."""

    p: int
    supersteps: list[Superstep] = field(default_factory=list)

    def record(self, label: str, comp: Sequence[float], words: Sequence[int]) -> None:
        self.supersteps.append(Superstep(label, tuple(comp), tuple(words)))

    @property
    def total_work(self) -> float:
        return sum(sum(s.comp_per_proc) for s in self.supersteps)

    @property
    def critical_work(self) -> float:
        """Sum of per-superstep maxima (the w term with g = l = 0)."""
        return sum(s.w for s in self.supersteps)

    @property
    def total_words(self) -> int:
        return sum(s.h for s in self.supersteps)

    @property
    def sync_count(self) -> int:
        return len(self.supersteps)

    def cost(self, g: float, l: float) -> float:
        """Predicted running time on a machine with throughput cost *g*
        (seconds/word) and barrier latency *l* (seconds)."""
        return sum(s.w + g * s.h + l for s in self.supersteps)

    def summary(self) -> dict:
        return {
            "p": self.p,
            "supersteps": self.sync_count,
            "critical_work_s": self.critical_work,
            "total_work_s": self.total_work,
            "max_h_relation_words": max((s.h for s in self.supersteps), default=0),
            "total_h_words": self.total_words,
        }


def _assign(tasks: Sequence[float], p: int) -> list[list[int]]:
    """Greedy LPT assignment of task indices to p processors."""
    order = sorted(range(len(tasks)), key=lambda k: -tasks[k])
    loads = [0.0] * p
    buckets: list[list[int]] = [[] for _ in range(p)]
    for k in order:
        proc = min(range(p), key=loads.__getitem__)
        buckets[proc].append(k)
        loads[proc] += tasks[k]
    return buckets


def bsp_cost_of_steady_ant(
    p_perm: np.ndarray,
    q_perm: np.ndarray,
    processors: int,
    depth: int,
    *,
    leaf_multiply=None,
) -> BSPCostModel:
    """Run the task-parallel steady ant, recording a BSP profile.

    Superstep structure (matching Listing 5's execution):

    1. ``scatter``: the root splits the inputs ``depth`` times and sends
       each processor its leaf subproblems — each leaf of order ``k``
       costs ``2k`` words of communication (two permutations);
    2. ``leaves``: every processor multiplies its leaves locally;
    3. one ``combine`` superstep per level back up: the combining
       processor receives both halves (``2k`` words for an order-``k``
       result) and runs the sequential ant passage.
    """
    from ..core.steady_ant._core import combine, split_p, split_q
    from ..core.steady_ant.combined import steady_ant_combined

    if leaf_multiply is None:
        leaf_multiply = steady_ant_combined
    model = BSPCostModel(p=processors)

    # --- split phase (sequential on the root processor) ----------------
    start = time.perf_counter()
    leaves = [(np.ascontiguousarray(p_perm, dtype=np.int64), np.ascontiguousarray(q_perm, dtype=np.int64))]
    split_meta: list[list] = []
    for _ in range(depth):
        meta_level = []
        nxt = []
        for sp, sq in leaves:
            if sp.size <= 1:
                meta_level.append(None)
                nxt.append((sp, sq))
                continue
            h = sp.size // 2
            p_lo, rows_lo, p_hi, rows_hi = split_p(sp, h)
            q_lo, cols_lo, q_hi, cols_hi = split_q(sq, h)
            meta_level.append((rows_lo, cols_lo, rows_hi, cols_hi, sp.size))
            nxt.append((p_lo, q_lo))
            nxt.append((p_hi, q_hi))
        split_meta.append(meta_level)
        leaves = nxt
    split_time = time.perf_counter() - start
    scatter_words = sum(2 * sp.size for sp, _ in leaves)
    model.record(
        "scatter",
        [split_time] + [0.0] * (processors - 1),
        [scatter_words] + [2 * leaves[0][0].size] * (processors - 1) if processors > 1 else [0],
    )

    # --- leaf superstep --------------------------------------------------
    leaf_times = []
    results = []
    for sp, sq in leaves:
        t0 = time.perf_counter()
        results.append(leaf_multiply(sp, sq))
        leaf_times.append(time.perf_counter() - t0)
    buckets = _assign(leaf_times, processors)
    comp = [sum(leaf_times[k] for k in bucket) for bucket in buckets]
    model.record("leaves", comp, [0] * processors)

    # --- combine supersteps ----------------------------------------------
    for meta_level in reversed(split_meta):
        merged = []
        times = []
        words = []
        consumed = 0
        for meta in meta_level:
            if meta is None:
                merged.append(results[consumed])
                consumed += 1
                continue
            rows_lo, cols_lo, rows_hi, cols_hi, nn = meta
            r_lo, r_hi = results[consumed], results[consumed + 1]
            consumed += 2
            t0 = time.perf_counter()
            merged.append(combine(rows_lo, cols_lo[r_lo], rows_hi, cols_hi[r_hi], nn))
            times.append(time.perf_counter() - t0)
            words.append(2 * nn)  # the combining processor receives both halves
        results = merged
        if times:
            buckets = _assign(times, processors)
            comp = [sum(times[k] for k in bucket) for bucket in buckets]
            wrds = [sum(words[k] for k in bucket) for bucket in buckets]
            model.record(f"combine@{len(times)}", comp, wrds)

    return model
