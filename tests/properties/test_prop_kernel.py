"""Property-based tests for combing algorithms and kernel queries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lcs_dp import lcs_score_scalar
from repro.core.combing.hybrid import hybrid_combing, hybrid_combing_grid
from repro.core.combing.iterative import (
    iterative_combing_antidiag_simd,
    iterative_combing_load_balanced,
    iterative_combing_rowmajor,
)
from repro.core.combing.recursive import recursive_combing
from repro.core.kernel import SemiLocalKernel

string_pairs = st.tuples(
    st.lists(st.integers(0, 3), min_size=1, max_size=16),
    st.lists(st.integers(0, 3), min_size=1, max_size=16),
)


@given(string_pairs)
@settings(max_examples=120, deadline=None)
def test_all_combing_algorithms_agree(pair):
    a, b = pair
    want = iterative_combing_rowmajor(a, b)
    assert np.array_equal(iterative_combing_antidiag_simd(a, b), want)
    assert np.array_equal(iterative_combing_load_balanced(a, b), want)
    assert np.array_equal(recursive_combing(a, b), want)
    assert np.array_equal(hybrid_combing(a, b, 2), want)
    assert np.array_equal(hybrid_combing_grid(a, b, 4), want)


@given(string_pairs)
@settings(max_examples=100, deadline=None)
def test_kernel_is_permutation(pair):
    a, b = pair
    k = iterative_combing_antidiag_simd(a, b)
    assert sorted(k.tolist()) == list(range(len(a) + len(b)))


@given(string_pairs)
@settings(max_examples=80, deadline=None)
def test_lcs_score_consistency(pair):
    a, b = pair
    k = SemiLocalKernel(iterative_combing_antidiag_simd(a, b), len(a), len(b))
    assert k.lcs_whole() == lcs_score_scalar(a, b)


@given(string_pairs, st.data())
@settings(max_examples=80, deadline=None)
def test_random_quadrant_query(pair, data):
    a, b = pair
    k = SemiLocalKernel(iterative_combing_rowmajor(a, b), len(a), len(b))
    l = data.draw(st.integers(0, len(b)))
    r = data.draw(st.integers(l, len(b)))
    assert k.string_substring(l, r) == lcs_score_scalar(a, b[l:r])
    la = data.draw(st.integers(0, len(a)))
    rb = data.draw(st.integers(0, len(b)))
    assert k.suffix_prefix(la, rb) == lcs_score_scalar(a[la:], b[:rb])
    assert k.prefix_suffix(la, rb) == lcs_score_scalar(a[:la], b[rb:])


@given(string_pairs)
@settings(max_examples=60, deadline=None)
def test_h_matrix_monotone_structure(pair):
    """H is nondecreasing in j, nonincreasing in i, with unit steps."""
    a, b = pair
    k = SemiLocalKernel(iterative_combing_rowmajor(a, b), len(a), len(b))
    h = k.h_matrix()
    dj = np.diff(h, axis=1)
    di = np.diff(h, axis=0)
    assert ((dj == 0) | (dj == 1)).all()
    assert ((di == 0) | (di == -1)).all()


@given(string_pairs)
@settings(max_examples=60, deadline=None)
def test_flip_symmetry(pair):
    a, b = pair
    kab = iterative_combing_rowmajor(a, b)
    kba = iterative_combing_rowmajor(b, a)
    size = len(a) + len(b)
    assert np.array_equal(kab, (size - 1 - kba)[::-1])


@given(st.lists(st.integers(0, 2), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_self_comparison_perfect_score(a):
    k = SemiLocalKernel(iterative_combing_antidiag_simd(a, a), len(a), len(a))
    assert k.lcs_whole() == len(a)
    # every prefix of a vs a scores its own length
    for l in range(len(a) + 1):
        assert k.prefix_suffix(l, 0) == l
