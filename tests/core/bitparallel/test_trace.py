"""Tests for the Fig. 3 anti-diagonal trace."""

from repro.core.bitparallel.trace import bit_combing_snapshots, format_snapshots


class TestSnapshots:
    def test_paper_example_second_antidiagonal(self):
        """Paper §4.4: after initialization h = 1111, v = 0000; processing
        the second anti-diagonal uses shift 2 and mask 0011."""
        snaps, score = bit_combing_snapshots("1000", "0100")
        assert score == 3
        assert len(snaps) == 4 + 4 - 1
        # before any anti-diagonal: h all ones, v all zeros is implied;
        # anti-diagonal 0 touches only cell (3, 0) [strand bit l=3... l=j+? ]
        first = snaps[0]
        assert 0 <= first.h < 16 and 0 <= first.v < 16

    def test_final_popcount_consistency(self):
        snaps, score = bit_combing_snapshots("1000", "0100")
        final_h = snaps[-1].h
        assert score == 4 - bin(final_h).count("1")

    def test_snapshot_count(self):
        snaps, _ = bit_combing_snapshots("101", "0110")
        assert len(snaps) == 3 + 4 - 1

    def test_bit_rendering_lengths(self):
        snaps, _ = bit_combing_snapshots("101", "0110")
        for s in snaps:
            assert len(s.h_bits(3)) == 3
            assert len(s.v_bits(4)) == 4


class TestFormat:
    def test_contains_all_lines(self):
        text = format_snapshots("1000", "0100")
        assert "init: h = 1111, v = 0000" in text
        assert "LCS = |a| - popcount(h) = 3" in text
        assert text.count("after anti-diagonal") == 7

    def test_accepts_code_arrays(self):
        import numpy as np

        text = format_snapshots(np.array([1, 0]), np.array([0, 1]))
        assert "LCS" in text
