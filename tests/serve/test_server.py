"""The daemon's robustness envelope: batching, backpressure, quotas,
deadlines, graceful drain, structured errors, SIGTERM (subprocess)."""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.batch import batch_lcs
from repro.errors import RequestRejectedError
from repro.serve import Engine, LcsServer, ServeClient, ServerConfig
from repro.serve.protocol import decode_line, encode_line

PAIRS = [("abacus", "cabbage"), ("banana", "ananas"), ("", "xyz"), ("same", "same")]


# -- harness ------------------------------------------------------------


class _GatedEngine(Engine):
    """An engine whose flushes block until the test opens the gate."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()

    def scores(self, pairs):
        assert self.gate.wait(timeout=30), "test forgot to open the gate"
        return super().scores(pairs)


async def _start(config: ServerConfig, engine: Engine | None = None) -> LcsServer:
    server = LcsServer(engine or Engine(backend="none"), config)
    await server.start()
    return server


async def _request(port: int, obj: dict, timeout: float = 30.0) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_line(obj))
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
    finally:
        writer.close()
    return decode_line(line)


@contextlib.contextmanager
def running_server(config: ServerConfig, engine: Engine | None = None):
    """Run a server on a background event-loop thread; yields it for use
    with the synchronous :class:`ServeClient`."""
    box: dict = {}
    started = threading.Event()

    def runner():
        async def main():
            server = await _start(config, engine)
            box["server"], box["loop"] = server, asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(timeout=30)
    try:
        yield box["server"]
    finally:
        box["loop"].call_soon_threadsafe(box["server"].request_drain)
        thread.join(timeout=30)
        assert not thread.is_alive(), "server failed to drain"


# -- round trips and continuous batching --------------------------------


class TestRoundTrips:
    def test_lcs_and_batch(self):
        async def main():
            server = await _start(ServerConfig(port=0, max_wait_ms=5.0))
            try:
                one = await _request(
                    server.port, {"id": "a", "type": "lcs", "a": "abacus", "b": "cabbage"}
                )
                many = await _request(
                    server.port, {"id": "b", "type": "batch", "pairs": [list(p) for p in PAIRS]}
                )
            finally:
                await server.aclose()
            return one, many

        one, many = asyncio.run(main())
        assert one == {"id": "a", "ok": True, "score": 3}
        assert many["ok"] and many["scores"] == list(batch_lcs(PAIRS))

    def test_concurrent_requests_coalesce(self):
        async def main():
            server = await _start(ServerConfig(port=0, max_wait_ms=150.0))
            try:
                responses = await asyncio.gather(
                    *[
                        _request(server.port, {"id": i, "type": "lcs", "a": a, "b": b})
                        for i, (a, b) in enumerate(PAIRS * 2)
                    ]
                )
            finally:
                await server.aclose()
            return responses, server

        responses, server = asyncio.run(main())
        want = list(batch_lcs(PAIRS * 2))
        assert [r["score"] for r in sorted(responses, key=lambda r: r["id"])] == want
        assert server.max_occupancy > 1  # continuous batching actually batched
        assert server.batches < len(responses)

    def test_health_and_metrics_request_types(self):
        async def main():
            server = await _start(ServerConfig(port=0))
            try:
                await _request(server.port, {"type": "lcs", "a": "ab", "b": "ba"})
                health = await _request(server.port, {"type": "health"})
                metrics = await _request(server.port, {"type": "metrics"})
            finally:
                await server.aclose()
            return health, metrics

        health, metrics = asyncio.run(main())
        assert health["ok"] and health["status"] == "serving"
        assert health["engine"]["state"] == "running"
        assert health["server"]["admitted"] == 1
        assert metrics["content_type"].startswith("text/plain")
        assert "repro_serve_admitted_total" in metrics["text"]


class TestBadRequests:
    @pytest.mark.parametrize(
        "raw,code",
        [
            (b"not json\n", "bad_request"),
            (b'["a", "list"]\n', "bad_request"),
            (json.dumps({"type": "nope"}).encode() + b"\n", "bad_request"),
            (json.dumps({"type": "lcs", "a": "x"}).encode() + b"\n", "bad_request"),
            (json.dumps({"type": "batch", "pairs": [["a"]]}).encode() + b"\n", "bad_request"),
            (
                json.dumps({"type": "lcs", "a": "x", "b": "y", "deadline_ms": "soon"}).encode()
                + b"\n",
                "bad_request",
            ),
        ],
    )
    def test_structured_errors(self, raw, code):
        async def main():
            server = await _start(ServerConfig(port=0))
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(raw)
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), 30)
                writer.close()
            finally:
                await server.aclose()
            return decode_line(line)

        resp = asyncio.run(main())
        assert resp["ok"] is False and resp["error"]["code"] == code


# -- the robustness envelope --------------------------------------------


class TestBackpressure:
    def test_overload_sheds_with_structured_error(self):
        engine = _GatedEngine(backend="none")
        config = ServerConfig(port=0, max_wait_ms=5.0, queue_cap=1, inflight_flushes=1)

        async def main():
            server = await _start(config, engine)
            try:
                tasks = []
                # a: dispatched into the gated flush; b: held by the
                # batcher awaiting the flush slot; c: fills the queue
                for rid in ("a", "b", "c"):
                    tasks.append(
                        asyncio.create_task(
                            _request(server.port, {"id": rid, "type": "lcs", "a": "ab", "b": "ba"})
                        )
                    )
                    await asyncio.sleep(0.1)
                shed = await _request(
                    server.port, {"id": "d", "type": "lcs", "a": "ab", "b": "ba"}
                )
                engine.gate.set()
                served = await asyncio.gather(*tasks)
            finally:
                engine.gate.set()
                await server.aclose()
            return shed, served, server

        shed, served, server = asyncio.run(main())
        assert shed["ok"] is False and shed["error"]["code"] == "overloaded"
        assert all(r["ok"] and r["score"] == 1 for r in served)  # shed lost, rest not
        assert server.shed == 1 and server.admitted == 3 == server.completed


class TestQuotas:
    def test_token_bucket_per_client(self):
        config = ServerConfig(port=0, quota_rate=1e-9, quota_burst=2.0)

        async def main():
            server = await _start(config)
            try:
                req = {"type": "lcs", "a": "ab", "b": "ba", "client": "greedy"}
                first = await _request(server.port, {"id": 1, **req})
                second = await _request(server.port, {"id": 2, **req})
                third = await _request(server.port, {"id": 3, **req})
                other = await _request(
                    server.port, {"id": 4, "type": "lcs", "a": "ab", "b": "ba", "client": "other"}
                )
            finally:
                await server.aclose()
            return first, second, third, other, server

        first, second, third, other, server = asyncio.run(main())
        assert first["ok"] and second["ok"]
        assert third["ok"] is False and third["error"]["code"] == "quota_exhausted"
        assert other["ok"]  # quotas are per client, not global
        assert server.quota_rejected == 1

    def test_batch_requests_cost_their_pair_count(self):
        config = ServerConfig(port=0, quota_rate=1e-9, quota_burst=3.0)

        async def main():
            server = await _start(config)
            try:
                big = await _request(
                    server.port,
                    {
                        "id": 1,
                        "type": "batch",
                        "client": "c",
                        "pairs": [["a", "b"]] * 4,  # 4 pairs > 3 tokens
                    },
                )
                fit = await _request(
                    server.port,
                    {"id": 2, "type": "batch", "client": "c", "pairs": [["a", "b"]] * 3},
                )
            finally:
                await server.aclose()
            return big, fit

        big, fit = asyncio.run(main())
        assert big["ok"] is False and big["error"]["code"] == "quota_exhausted"
        assert fit["ok"]


class TestDeadlines:
    def test_expired_in_queue_skips_compute(self):
        engine = _GatedEngine(backend="none")
        config = ServerConfig(port=0, max_wait_ms=5.0, inflight_flushes=1)

        async def main():
            server = await _start(config, engine)
            try:
                blocker = asyncio.create_task(
                    _request(server.port, {"id": "x", "type": "lcs", "a": "ab", "b": "ba"})
                )
                await asyncio.sleep(0.1)  # let it occupy the gated flush
                doomed = asyncio.create_task(
                    _request(
                        server.port,
                        {"id": "y", "type": "lcs", "a": "ab", "b": "ba", "deadline_ms": 20},
                    )
                )
                await asyncio.sleep(0.2)  # deadline passes while queued
                engine.gate.set()
                return await blocker, await doomed, server
            finally:
                engine.gate.set()
                await server.aclose()

        blocked, doomed, server = asyncio.run(main())
        assert blocked["ok"]
        assert doomed["ok"] is False and doomed["error"]["code"] == "deadline_expired"
        assert server.deadline_expired == 1

    def test_default_deadline_applies(self):
        engine = _GatedEngine(backend="none")
        config = ServerConfig(
            port=0, max_wait_ms=5.0, inflight_flushes=1, default_deadline_ms=20.0
        )

        async def main():
            server = await _start(config, engine)
            try:
                blocker = asyncio.create_task(
                    _request(server.port, {"id": "x", "type": "lcs", "a": "ab", "b": "ba"})
                )
                await asyncio.sleep(0.1)  # its flush holds the only slot
                doomed = asyncio.create_task(
                    _request(server.port, {"id": "y", "type": "lcs", "a": "ab", "b": "ba"})
                )
                await asyncio.sleep(0.2)  # default deadline passes while queued
                engine.gate.set()
                return await blocker, await doomed
            finally:
                engine.gate.set()
                await server.aclose()

        blocked, doomed = asyncio.run(main())
        # the first flush started within its deadline; the request stuck
        # behind it picked up the default deadline and outlived it
        assert blocked["ok"]
        assert doomed["ok"] is False and doomed["error"]["code"] == "deadline_expired"


class TestGracefulDrain:
    def test_zero_dropped_accepted_requests(self):
        engine = _GatedEngine(backend="none")
        config = ServerConfig(port=0, max_wait_ms=50.0)

        async def main():
            server = await _start(config, engine)
            inflight = [
                asyncio.create_task(
                    _request(server.port, {"id": i, "type": "lcs", "a": "abacus", "b": "cabbage"})
                )
                for i in range(4)
            ]
            await asyncio.sleep(0.2)  # all admitted, flush gated
            server.request_drain()
            server.request_drain()  # idempotent (double SIGTERM)
            refused = await _request(
                server.port, {"id": "late", "type": "lcs", "a": "ab", "b": "ba"}
            )
            engine.gate.set()
            responses = await asyncio.gather(*inflight)
            await asyncio.wait_for(server.serve_forever(), timeout=30)
            return refused, responses, server

        refused, responses, server = asyncio.run(main())
        assert refused["ok"] is False and refused["error"]["code"] == "draining"
        assert all(r["ok"] and r["score"] == 3 for r in responses)
        assert server.admitted == 4 == server.completed  # the zero-drop invariant
        assert server.drained == 4
        assert engine.state == "closed"

    def test_drain_with_empty_queue_exits_promptly(self):
        async def main():
            server = await _start(ServerConfig(port=0))
            await _request(server.port, {"type": "lcs", "a": "ab", "b": "ba"})
            started = time.monotonic()
            await asyncio.wait_for(server.aclose(), timeout=30)
            return time.monotonic() - started, server

        elapsed, server = asyncio.run(main())
        assert elapsed < 10
        assert server.admitted == server.completed == 1


class TestSyncClient:
    def test_client_round_trip_and_errors(self):
        config = ServerConfig(port=0, quota_rate=1e-9, quota_burst=1.0)
        with running_server(config) as server:
            with ServeClient("127.0.0.1", server.port, client_id="c1") as client:
                assert client.lcs("abacus", "cabbage") == 3
                with pytest.raises(RequestRejectedError) as err:
                    client.lcs("ab", "ba")  # second request breaks the quota
                assert err.value.code == "quota_exhausted"
            with ServeClient("127.0.0.1", server.port, client_id="c2") as client:
                # one pair costs one token, so c2's single-pair batch fits
                assert client.batch(PAIRS[:1]) == list(batch_lcs(PAIRS[:1]))
                assert client.health()["status"] == "serving"
                assert "repro_serve_requests_total" in client.metrics()


class TestSigtermSubprocess:
    def test_daemon_drains_on_sigterm_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--max-wait-ms", "20"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on ")
            port = int(banner.rsplit(":", 1)[1])
            with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                sock.sendall(b'{"id": 1, "type": "lcs", "a": "abacus", "b": "cabbage"}\n')
                reply = json.loads(sock.makefile("rb").readline())
            assert reply == {"id": 1, "ok": True, "score": 3}
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0  # admitted == completed: nothing dropped
        assert "drain complete" in err
        assert "admitted=1, completed=1" in err
