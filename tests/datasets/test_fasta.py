"""Tests for FASTA I/O."""

import pytest

from repro.datasets.fasta import read_fasta, write_fasta


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        records = [("seq1 description", "ACGT" * 30), ("seq2", "TTTT")]
        path = tmp_path / "x.fasta"
        write_fasta(path, records)
        assert list(read_fasta(path)) == records

    def test_wrapping(self, tmp_path):
        path = tmp_path / "w.fasta"
        write_fasta(path, [("s", "A" * 100)], width=10)
        lines = path.read_text().splitlines()
        assert lines[0] == ">s"
        assert all(len(l) == 10 for l in lines[1:])

    def test_lowercase_normalized(self, tmp_path):
        path = tmp_path / "l.fasta"
        path.write_text(">s\nacgt\n")
        assert list(read_fasta(path)) == [("s", "ACGT")]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "b.fasta"
        path.write_text(">s\nAC\n\nGT\n")
        assert list(read_fasta(path)) == [("s", "ACGT")]

    def test_data_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n>s\nAC\n")
        with pytest.raises(ValueError):
            list(read_fasta(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.fasta"
        path.write_text("")
        assert list(read_fasta(path)) == []


class TestHardening:
    """Dirty real-world downloads: CRLF, BOM, junk bytes, dupes."""

    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "crlf.fasta"
        path.write_bytes(b">s one\r\nACGT\r\nTTAA\r\n")
        assert list(read_fasta(path)) == [("s one", "ACGTTTAA")]

    def test_utf8_bom_stripped(self, tmp_path):
        path = tmp_path / "bom.fasta"
        path.write_bytes(b"\xef\xbb\xbf>s\nACGT\n")
        assert list(read_fasta(path)) == [("s", "ACGT")]

    def test_invalid_characters_rejected_with_line(self, tmp_path):
        path = tmp_path / "junk.fasta"
        path.write_text(">s\nACGT\nAC>GT\n")
        with pytest.raises(ValueError, match=r":3:.*invalid sequence"):
            list(read_fasta(path))

    def test_digits_rejected(self, tmp_path):
        path = tmp_path / "digits.fasta"
        path.write_text(">s\nAC1GT\n")
        with pytest.raises(ValueError, match="invalid sequence"):
            list(read_fasta(path))

    def test_gap_and_stop_symbols_allowed(self, tmp_path):
        path = tmp_path / "gaps.fasta"
        path.write_text(">s\nAC-G.T*\n")
        assert list(read_fasta(path)) == [("s", "AC-G.T*")]

    def test_custom_alphabet(self, tmp_path):
        path = tmp_path / "bin.fasta"
        path.write_text(">s\n0101\n")
        assert list(read_fasta(path, alphabet="01")) == [("s", "0101")]
        with pytest.raises(ValueError, match="invalid sequence"):
            list(read_fasta(path))

    def test_duplicate_header_rejected(self, tmp_path):
        path = tmp_path / "dup.fasta"
        path.write_text(">s\nAC\n>s\nGT\n")
        with pytest.raises(ValueError, match="duplicate FASTA header 's'"):
            list(read_fasta(path))

    def test_empty_header_rejected(self, tmp_path):
        path = tmp_path / "noname.fasta"
        path.write_text(">\nAC\n")
        with pytest.raises(ValueError, match="empty FASTA header"):
            list(read_fasta(path))

    def test_max_length_guard(self, tmp_path):
        path = tmp_path / "big.fasta"
        write_fasta(path, [("ok", "A" * 50), ("big", "C" * 51)])
        with pytest.raises(ValueError, match=r"'big'.*exceeds max_length=50"):
            list(read_fasta(path, max_length=50))
        assert len(list(read_fasta(path, max_length=51))) == 2

    def test_error_does_not_yield_partial_record(self, tmp_path):
        path = tmp_path / "partial.fasta"
        path.write_text(">good\nAC\n>bad\nXX!\n")
        records = []
        with pytest.raises(ValueError):
            for rec in read_fasta(path):
                records.append(rec)
        assert records == [("good", "AC")]
