"""Tests for the exception hierarchy and its use across the library."""

import numpy as np
import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_base(self):
        for exc in (
            errors.InvalidPermutationError,
            errors.ShapeMismatchError,
            errors.AlphabetError,
            errors.BackendError,
            errors.QueryError,
            errors.TaskTimeoutError,
            errors.WorkerCrashError,
            errors.RoundFailedError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_dual_inheritance(self):
        """Library errors also subclass the matching builtin so generic
        callers can catch ValueError/IndexError/RuntimeError."""
        assert issubclass(errors.InvalidPermutationError, ValueError)
        assert issubclass(errors.ShapeMismatchError, ValueError)
        assert issubclass(errors.AlphabetError, ValueError)
        assert issubclass(errors.QueryError, IndexError)
        assert issubclass(errors.BackendError, RuntimeError)
        assert issubclass(errors.TaskTimeoutError, TimeoutError)

    def test_fault_errors_are_backend_errors(self):
        for exc in (errors.TaskTimeoutError, errors.WorkerCrashError, errors.RoundFailedError):
            assert issubclass(exc, errors.BackendError)

    def test_fault_errors_carry_task_index(self):
        assert errors.WorkerCrashError("x", task_index=3).task_index == 3
        assert errors.TaskTimeoutError("x", task_index=1).task_index == 1
        assert errors.RoundFailedError("x").task_index is None

    def test_warning_hierarchy(self):
        assert issubclass(errors.DegradedExecutionWarning, errors.ReproWarning)
        assert issubclass(errors.ReproWarning, UserWarning)


class TestRaisedWhereDocumented:
    def test_invalid_permutation(self):
        from repro.core.permutation import Permutation

        with pytest.raises(errors.ReproError):
            Permutation([0, 0])

    def test_shape_mismatch(self):
        from repro.core.steady_ant import steady_ant_combined

        with pytest.raises(errors.ReproError):
            steady_ant_combined(np.arange(2), np.arange(3))

    def test_alphabet_error(self):
        from repro.core.bitparallel import bit_lcs

        with pytest.raises(errors.ReproError):
            bit_lcs([0, 1, 2], [0, 1])

    def test_query_error(self):
        from repro import semilocal_lcs

        with pytest.raises(errors.ReproError):
            semilocal_lcs("ab", "cd").h(99, 0)

    def test_one_base_class_catches_everything(self):
        """The documented catch-one-base contract."""
        from repro import semilocal_lcs
        from repro.core.permutation import Permutation

        failures = 0
        for trigger in (
            lambda: Permutation([1, 1]),
            lambda: semilocal_lcs("ab", "cd").string_substring(2, 1),
        ):
            try:
                trigger()
            except errors.ReproError:
                failures += 1
        assert failures == 2
