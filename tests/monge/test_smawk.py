"""Tests for the SMAWK row-minima algorithm."""

import numpy as np
import pytest

from repro.core.dist_matrix import is_monge
from repro.monge.multiply import random_monge
from repro.monge.smawk import row_minima_brute, smawk


def smawk_on_matrix(m: np.ndarray) -> np.ndarray:
    return smawk(m.shape[0], m.shape[1], lambda i, j: m[i, j])


class TestSmawk:
    def test_tiny(self):
        m = np.array([[3, 1], [2, 5]])
        # row 0 min at col 1, row 1 min at col 0 — NOT totally monotone;
        # use a monotone one instead:
        m = np.array([[1, 3], [5, 2]])
        assert smawk_on_matrix(m).tolist() == [0, 1]

    def test_single_row_and_col(self):
        assert smawk_on_matrix(np.array([[5, 2, 7]])).tolist() == [1]
        assert smawk_on_matrix(np.array([[3], [1], [2]])).tolist() == [0, 0, 0]

    def test_empty_rows(self):
        assert smawk(0, 3, lambda i, j: 0).size == 0

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            smawk(2, 0, lambda i, j: 0)

    def test_random_monge_matches_brute(self, rng):
        for _ in range(40):
            p = int(rng.integers(1, 20))
            q = int(rng.integers(1, 20))
            m = random_monge(rng, p, q)
            assert is_monge(m)
            got = smawk_on_matrix(m)
            want = row_minima_brute(range(p), list(range(q)), lambda i, j: m[i, j])
            assert got.tolist() == [want[r] for r in range(p)], m

    def test_leftmost_tie_breaking(self):
        m = np.zeros((3, 4), dtype=int)  # all ties: leftmost column wins
        assert smawk_on_matrix(m).tolist() == [0, 0, 0]

    def test_minima_columns_monotone(self, rng):
        """Total monotonicity implies the argmin sequence is nondecreasing."""
        for _ in range(20):
            m = random_monge(rng, 15, 12)
            arg = smawk_on_matrix(m)
            assert (np.diff(arg) >= 0).all()

    def test_evaluation_count_linear(self):
        """SMAWK must evaluate O(rows + cols) entries, far below rows*cols."""
        calls = [0]
        n = 128
        rng = np.random.default_rng(5)
        m = random_monge(rng, n, n)

        def f(i, j):
            calls[0] += 1
            return m[i, j]

        smawk(n, n, f)
        assert calls[0] < 12 * n  # generous constant; brute force is n^2
