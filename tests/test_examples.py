"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; they must keep working.
Scripts are executed in a subprocess (own cwd, so artifacts like
``braid.svg`` land in a temp dir). The parallel-scaling example gets a
small explicit size to stay fast.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(tmp_path, name: str, *args: str) -> str:
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example(tmp_path, "quickstart.py")
        assert "combing algorithms agree" in out
        assert "bit-parallel LCS" in out

    def test_genome_comparison(self, tmp_path):
        out = run_example(tmp_path, "genome_comparison.py")
        assert "UPGMA tree" in out
        assert "identity" in out

    def test_braid_visualization(self, tmp_path):
        out = run_example(tmp_path, "braid_visualization.py")
        assert "reduced" in out
        assert (tmp_path / "braid.svg").exists()

    def test_bitparallel_trace(self, tmp_path):
        out = run_example(tmp_path, "bitparallel_trace.py")
        assert "LCS = |a| - popcount(h) = 3" in out
        assert out.count("= 3") >= 4  # trace + three variants agree

    def test_time_series_motifs(self, tmp_path):
        out = run_example(tmp_path, "time_series_motifs.py")
        assert "both planted occurrences recovered" in out

    def test_fault_tolerance(self, tmp_path):
        out = run_example(tmp_path, "fault_tolerance.py")
        assert "bit-identical result" in out
        assert "graceful degradation ladder verified" in out

    def test_checkpoint_resume(self, tmp_path):
        out = run_example(tmp_path, "checkpoint_resume.py")
        assert "resumed under 20% task-failure chaos: bit-identical" in out
        assert "checkpoint/resume examples all passed" in out

    def test_diff_and_streaming(self, tmp_path):
        out = run_example(tmp_path, "diff_and_streaming.py")
        assert "unified diff" in out
        assert "final LCS" in out

    @pytest.mark.slow
    def test_parallel_scaling(self, tmp_path):
        out = run_example(tmp_path, "parallel_scaling.py", "800")
        assert "speedup" in out
        assert "steady ant" in out
