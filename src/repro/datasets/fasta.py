"""Minimal FASTA reader/writer.

Lets users run the benchmarks on real genome downloads (the paper's NCBI
dataset) instead of the built-in simulator. Only plain single-line or
wrapped FASTA is supported — no quality scores, no gzip.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator


def read_fasta(path: str | os.PathLike) -> Iterator[tuple[str, str]]:
    """Yield ``(header, sequence)`` pairs from a FASTA file."""
    header: str | None = None
    chunks: list[str] = []
    with open(path, "r", encoding="ascii") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield header, "".join(chunks)
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise ValueError(f"{path}: sequence data before first header")
                chunks.append(line.upper())
        if header is not None:
            yield header, "".join(chunks)


def write_fasta(
    path: str | os.PathLike, records: Iterable[tuple[str, str]], *, width: int = 70
) -> None:
    """Write ``(header, sequence)`` records, wrapping at *width* columns."""
    with open(path, "w", encoding="ascii") as fh:
        for header, seq in records:
            fh.write(f">{header}\n")
            for start in range(0, len(seq), width):
                fh.write(seq[start : start + width] + "\n")
