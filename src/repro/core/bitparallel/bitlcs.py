"""Blocked bit-parallel LCS (paper Listing 8).

The ``m_pad x n_pad`` grid is tiled into ``w x w`` blocks. Blocks are
processed in block-anti-diagonal order; all blocks of one block-anti-
diagonal are mutually independent and are processed as *one batch of
NumPy word operations* — the SIMD/thread parallelism of the paper mapped
onto array lanes. Within a block, the ``2w - 1`` cell anti-diagonals are
swept with shifts: the upper-left triangle right-shifts ``h``/``a``
against ``v``/``b``, the lower-right triangle left-shifts (footnote 9).

Variants:

- ``old``: words are gathered from / scattered to the big arrays on
  every one of the ``2w - 1`` inner steps (the extra memory traffic and
  false sharing the paper's first optimization removes);
- ``new1``: gather once per block batch, run the inner loop on locals,
  scatter once (memory-access optimization, original formula);
- ``new2``: ``new1`` plus the optimized Boolean update — the 12-operation
  formula for ``v``, the XOR-patch update ``h ^= (v ^ v') << k``, and the
  negated-``a`` encoding that folds one negation into packing.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ...alphabet import encode, to_binary
from ...errors import ShapeMismatchError
from ...obs import get_metrics
from ...types import Sequenceish
from .words import (
    MAX_WIDTH,
    WORD_DTYPE,
    pack_a_words,
    pack_a_words_column,
    pack_b_words,
    popcount_words,
    word_mask,
)

Variant = Literal["old", "new1", "new2"]

_U = WORD_DTYPE


def _triangle_masks(w: int) -> list[tuple[int, bool, np.uint64]]:
    """Per-inner-step ``(shift, is_upper_left, anti-diagonal mask)``.

    Step ``t`` (0-based) processes cells with ``i_local + j_local == t``;
    active ``j_local`` bits are ``[0, t]`` in the upper-left triangle and
    ``[t - w + 1, w - 1]`` in the lower-right one.
    """
    steps = []
    full = int(word_mask(w))
    for t in range(2 * w - 1):
        if t <= w - 1:
            sh = w - 1 - t
            mask = (1 << (t + 1)) - 1
            steps.append((sh, True, _U(mask)))
        else:
            sh = t - w + 1
            mask = (full >> sh) << sh
            steps.append((sh, False, _U(mask & full)))
    return steps


if hasattr(np, "bitwise_count"):

    def _parity(words: np.ndarray) -> np.ndarray:
        """Per-word popcount parity (0/1) of a uint64 array."""
        return np.bitwise_count(words).astype(WORD_DTYPE) & _U(1)

else:  # pragma: no cover - NumPy < 2.0

    def _parity(words: np.ndarray) -> np.ndarray:
        """Per-word popcount parity via xor-folding (no popcount op)."""
        x = words.copy()
        for s in (32, 16, 8, 4, 2, 1):
            x ^= x >> _U(s)
        return x & _U(1)


def _multi_diag_lcs(ca, cb, w: int) -> int:
    """Multi-diagonal column sweep: one batched carry-adder column step
    advances *every* block of the current block-anti-diagonal at once.

    Per block-anti-diagonal the diagonal sweep issues ``2w - 1`` batched
    steps whose triangle masks keep many lanes idle; the column sweep
    issues exactly ``w`` steps, each advancing one full ``w``-row column
    of every block, packing several grid anti-diagonals' worth of cells
    into each NumPy op. A column of cells is the classic bit-parallel
    recurrence: the adder ``T = A + G + v_in`` carries a vertical strand
    down through the word, and the resulting flips update ``h``. The
    vertical output bit needs no carry-out extraction — one strand enters
    the column and one leaves, so ``v_out = v_in XOR parity(flips)``
    (conservation of strands; ``np.bitwise_count`` gives the parity
    branch-free for every ``w``).

    Both strings are packed in normal LSB-first layout
    (:func:`~.words.pack_a_words_column`); ragged edges keep the library's
    validity-mask discipline, with an all-full fast path that skips the
    mask gating entirely when no padding exists.
    """
    a_words, a_valid, m_pad = pack_a_words_column(ca, w)
    b_words, b_valid, n_pad = pack_b_words(cb, w)
    ma, nb = a_words.size, b_words.size
    wmask = word_mask(w)
    h = np.full(ma, wmask, dtype=WORD_DTYPE)
    v = np.zeros(nb, dtype=WORD_DTYPE)
    one = _U(1)
    zero = _U(0)
    all_full = (m_pad == ca.size) and (n_pad == cb.size)
    for d in range(ma + nb - 1):
        i_lo = max(0, d - nb + 1)
        i_hi = min(ma - 1, d)
        sl_i = slice(i_lo, i_hi + 1)
        js = d - np.arange(i_lo, i_hi + 1)
        hv = h[sl_i].copy()
        vv = v[js]
        av = a_words[sl_i]
        bv = b_words[js]
        if not all_full:
            mh = a_valid[sl_i]
            mv = b_valid[js]
            inv_mh = (~mh) & wmask
            ragged = bool((mh != wmask).any()) or bool((mv != wmask).any())
        for jl in range(w):
            sh = _U(jl)
            beta = (bv >> sh) & one
            # S: rows of the column whose a-bit matches this b-bit
            S = av ^ ((zero - beta) ^ wmask)
            vin = (vv >> sh) & one
            if all_full:
                G = hv & S
                T = hv + G + vin
                C = (T ^ hv ^ G) & wmask
                flip = (~C & G) | (C & (hv ^ wmask))
            else:
                G = hv & (S & mh)
                A = hv | inv_mh  # carries pass through padding rows
                T = A + G + vin
                C = (T ^ A ^ G) & wmask
                flip = (~C & G) | (C & (hv ^ wmask) & mh)
                if ragged:
                    # a column outside the real grid changes nothing
                    flip &= zero - ((mv >> sh) & one)
            vout = vin ^ _parity(flip)
            hv = hv ^ flip
            vv = (vv & ~(one << sh)) | (vout << sh)
        h[sl_i] = hv
        v[js] = vv
    return m_pad - popcount_words(h, w)


def bit_lcs(
    a: Sequenceish,
    b: Sequenceish,
    *,
    variant: Variant = "new2",
    w: int = MAX_WIDTH,
    multi_diag: bool = False,
) -> int:
    """LCS score of two binary strings by bit-parallel combing.

    O(mn / w) word operations; only Boolean logic and shifts, no integer
    arithmetic and no precomputed tables.

    ``multi_diag=True`` selects the multi-diagonal column sweep
    (:func:`_multi_diag_lcs`): several grid anti-diagonals advance per
    NumPy op instead of one masked triangle step, cutting the inner loop
    from ``2w - 1`` to ``w`` batched steps per block-anti-diagonal. Same
    score, different sweep; it overtakes the ``new2`` diagonal sweep as
    the strings grow (larger batches per op) and *variant* is then
    ignored.
    """
    ca = to_binary(a) if isinstance(a, str) else encode(a)
    cb = to_binary(b) if isinstance(b, str) else encode(b)
    m, n = ca.size, cb.size
    if m == 0 or n == 0:
        return 0
    metrics = get_metrics()
    metrics.inc("bitparallel.calls", 1)
    if multi_diag:
        metrics.inc("compute.multi_diag_calls", 1)
        return _multi_diag_lcs(ca, cb, w)
    a_words, a_valid, m_pad = pack_a_words(ca, w)
    b_words, b_valid, n_pad = pack_b_words(cb, w)
    ma = a_words.size
    nb = b_words.size
    h = np.full(ma, word_mask(w), dtype=WORD_DTYPE)
    v = np.zeros(nb, dtype=WORD_DTYPE)
    steps = _triangle_masks(w)
    wmask = word_mask(w)
    use_new2 = variant == "new2"
    if use_new2:
        a_words = (~a_words) & wmask  # negated-a encoding (third optimization)

    gather_each_step = variant == "old"

    for d in range(ma + nb - 1):
        i_lo = max(0, d - nb + 1)
        i_hi = min(ma - 1, d)
        blk_i = np.arange(i_lo, i_hi + 1)  # block rows, top-down
        blk_j = d - blk_i  # block columns
        ls = ma - 1 - blk_i  # h/a word indices (reversed layout)
        js = blk_j  # v/b word indices

        if not gather_each_step:
            hv = h[ls]
            vv = v[js]
            av = a_words[ls]
            bv = b_words[js]
            mh = a_valid[ls]
            mv = b_valid[js]

        for sh, upper, mask in steps:
            if gather_each_step:
                hv = h[ls]
                vv = v[js]
                av = a_words[ls]
                bv = b_words[js]
                mh = a_valid[ls]
                mv = b_valid[js]
            shift = _U(sh)
            if upper:
                hs = hv >> shift
                as_ = av >> shift
                mfull = mask & (mh >> shift) & mv
            else:
                hs = (hv << shift) & wmask
                as_ = (av << shift) & wmask
                mfull = mask & ((mh << shift) & wmask) & mv
            if use_new2:
                s = as_ ^ bv  # a already negated: s = ~(a ^ b)
                vv_old = vv
                vv = (hs | (~mfull & wmask)) & (vv | (s & mfull))
                patch = vv ^ vv_old
                if upper:
                    hv = hv ^ ((patch << shift) & wmask)
                else:
                    hv = hv ^ (patch >> shift)
            else:
                s = (~(as_ ^ bv)) & wmask
                c = mfull & (s | ((~hs & wmask) & vv))
                vv_old = vv
                vv = ((~c & wmask) & vv) | (c & hs)
                if upper:
                    cb_ = (c << shift) & wmask
                    hv = ((~cb_ & wmask) & hv) | (cb_ & ((vv_old << shift) & wmask))
                else:
                    cb_ = c >> shift
                    hv = ((~cb_ & wmask) & hv) | (cb_ & (vv_old >> shift))
            if gather_each_step:
                h[ls] = hv
                v[js] = vv

        if not gather_each_step:
            h[ls] = hv
            v[js] = vv

    return m_pad - popcount_words(h, w)
