"""Steady ant with a preallocated memory arena ("memory").

The paper (§4.2.1) stores the permutations of a recursive call in
preallocated blocks: inputs live in a ``used`` block, the four split-off
halves are written into a ``free`` block, and the two blocks swap roles
down the recursion, bounding permutation storage at ``8N`` words plus the
O(N log N) index mappings.

In NumPy we reproduce the same discipline with a bump allocator over one
preallocated ``int64`` buffer: every index mapping, expanded column array
and result is a view into the arena, released stack-fashion when the call
returns, so the whole multiplication performs O(log n) Python-level heap
allocations instead of O(n). NumPy still creates internal temporaries
(masks, sort results), so the effect is reduced allocator/GC pressure
rather than an exact 8N bound; the Fig. 4a bench measures what that is
worth here.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeMismatchError
from ...types import PermArray
from ._core import combine


class Arena:
    """Bump allocator over a single preallocated int64 buffer.

    ``alloc`` returns views; ``mark``/``release`` implement stack
    discipline. The buffer may only grow while nothing is live (growth
    would invalidate outstanding views).
    """

    def __init__(self, capacity: int):
        self._buf = np.empty(max(capacity, 64), dtype=np.int64)
        self._top = 0

    @property
    def capacity(self) -> int:
        return self._buf.size

    @property
    def in_use(self) -> int:
        return self._top

    def alloc(self, k: int) -> np.ndarray:
        if self._top + k > self._buf.size:
            if self._top == 0:
                self._buf = np.empty(max(k, 2 * self._buf.size), dtype=np.int64)
            else:  # pragma: no cover - capacity is sized a priori
                raise MemoryError(f"arena overflow: {self._top} + {k} > {self._buf.size}")
        view = self._buf[self._top : self._top + k]
        self._top += k
        return view

    def mark(self) -> int:
        return self._top

    def release(self, mark: int) -> None:
        self._top = mark


def _multiply(p: np.ndarray, q: np.ndarray, arena: Arena) -> np.ndarray:
    """Returns the product as a view into the arena, allocated at the
    caller's current mark (everything deeper has been released)."""
    n = p.size
    if n <= 1:
        out = arena.alloc(n)
        out[:] = p
        return out
    h = n // 2
    mark = arena.mark()

    # -- split (the four halves + mappings live in the arena) ----------
    mask = p < h
    rows_lo = arena.alloc(h)
    rows_hi = arena.alloc(n - h)
    rows_lo[:] = np.flatnonzero(mask)
    rows_hi[:] = np.flatnonzero(~mask)
    p_lo = arena.alloc(h)
    p_hi = arena.alloc(n - h)
    np.take(p, rows_lo, out=p_lo)
    np.take(p, rows_hi, out=p_hi)
    p_hi -= h

    cols_lo = arena.alloc(h)
    cols_hi = arena.alloc(n - h)
    cols_lo[:] = q[:h]
    cols_hi[:] = q[h:]
    cols_lo.sort()
    cols_hi.sort()
    q_lo = arena.alloc(h)
    q_hi = arena.alloc(n - h)
    q_lo[:] = np.searchsorted(cols_lo, q[:h])
    q_hi[:] = np.searchsorted(cols_hi, q[h:])

    # -- conquer --------------------------------------------------------
    r_lo_small = _multiply(p_lo, q_lo, arena)
    lo_cols_full = arena.alloc(h)
    np.take(cols_lo, r_lo_small, out=lo_cols_full)
    r_hi_small = _multiply(p_hi, q_hi, arena)
    hi_cols_full = arena.alloc(n - h)
    np.take(cols_hi, r_hi_small, out=hi_cols_full)

    result = combine(rows_lo, lo_cols_full, rows_hi, hi_cols_full, n)

    arena.release(mark)
    out = arena.alloc(n)
    out[:] = result
    return out


def arena_capacity_for(n: int) -> int:
    """Worst-case live arena words along one recursion path.

    Each level keeps ~8 arrays of total size 8 * (its n) live while its
    children run; the geometric sum over the path is < 16n. A generous
    constant keeps the bound simple.
    """
    return 24 * max(n, 4) + 64


def steady_ant_memory(p: PermArray, q: PermArray, *, arena: Arena | None = None) -> PermArray:
    """Sticky product ``p ⊙ q`` with arena-managed workspace."""
    p = np.ascontiguousarray(p, dtype=np.int64)
    q = np.ascontiguousarray(q, dtype=np.int64)
    n = p.size
    if n != q.size:
        raise ShapeMismatchError(f"orders differ: {n} vs {q.size}")
    if arena is None:
        arena = Arena(arena_capacity_for(n))
    mark = arena.mark()
    result = _multiply(p, q, arena).copy()  # detach before the arena is reused
    arena.release(mark)
    return result
