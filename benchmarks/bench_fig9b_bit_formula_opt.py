"""Fig. 9b: original vs optimized Boolean update formula.

Paper result: the 12-operation formula (optimized v-update, XOR-patch
h-update, negated-a encoding) improves running time by a factor of
~1.48 over the original 18-operation update.
"""

import pytest

from repro.bench.figures import fig9b_bit_formula_optimization
from repro.bench.harness import scaled
from repro.core.bitparallel import bit_lcs
from repro.datasets.synthetic import binary_pair


@pytest.fixture(scope="module")
def pair():
    n = scaled(40_000)
    return binary_pair(n, n, seed=19)


@pytest.mark.parametrize("variant", ["new1", "new2"])
def test_bit_formula_variant(benchmark, variant, pair):
    a, b = pair
    benchmark.group = "fig9b Boolean formula"
    benchmark.pedantic(bit_lcs, args=(a, b), kwargs={"variant": variant}, rounds=3, iterations=1)


def test_fig9b_table(benchmark, print_table):
    table = benchmark.pedantic(
        lambda: fig9b_bit_formula_optimization(repeats=2), rounds=1, iterations=1
    )
    print_table(table)
    speedup = table.rows[1][2]
    # paper: ~1.48x; accept the same direction with generous margins
    assert speedup > 1.1, f"optimized formula should win, got {speedup:.2f}x"
