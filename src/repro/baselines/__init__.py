"""Baseline LCS algorithms the paper compares against.

- :mod:`repro.baselines.lcs_dp` — classic quadratic dynamic programming
  (score, full table, backtracking).
- :mod:`repro.baselines.prefix_lcs` — linear-space "prefix LCS"
  (Aluru-style parallel-prefix row updates; ``prefix_rowmajor`` and
  ``prefix_antidiag_simd`` in the paper's notation).
- :mod:`repro.baselines.hirschberg` — linear-space LCS recovery.
- :mod:`repro.baselines.semilocal_naive` — brute-force semi-local LCS
  matrix straight from Definition 3.3 (test oracle).
"""

from .lcs_dp import lcs_score_dp, lcs_table, lcs_backtrack
from .prefix_lcs import prefix_lcs_rowmajor, prefix_lcs_antidiag_simd, prefix_lcs_scalar
from .hirschberg import hirschberg_lcs
from .semilocal_naive import semilocal_h_matrix_naive, lcs_with_wildcards
from .bit_hyyro import bit_lcs_hyyro, bit_lcs_hyyro_words, hyyro_profile

__all__ = [
    "lcs_score_dp",
    "lcs_table",
    "lcs_backtrack",
    "prefix_lcs_rowmajor",
    "prefix_lcs_antidiag_simd",
    "prefix_lcs_scalar",
    "hirschberg_lcs",
    "semilocal_h_matrix_naive",
    "lcs_with_wildcards",
    "bit_lcs_hyyro",
    "bit_lcs_hyyro_words",
    "hyyro_profile",
]
