"""Batch scheduler: shape bucketing, megabatch packing, round pipelining.

Turns an arbitrary ragged stream of string pairs into a small number of
lockstep megabatches and keeps a machine's workers saturated:

1. **Bucketing** — oriented pairs (``m <= n`` after an orientation flip
   recorded per lane) are grouped by padded shape ``(ceil_pow2(m),
   ceil_pow2(n))``, floored at ``min_side`` so tiny pairs share one
   bucket instead of fragmenting into dozens. Power-of-two rounding
   bounds padding waste at <2x per axis while collapsing the number of
   distinct kernel shapes (each shape is one worker task).
2. **Megabatch packing** — each bucket is cut into megabatches of at
   most ``max_lanes`` lanes; lane stacks are packed directly into the
   machine's reusable shared-memory slabs
   (:meth:`~repro.parallel.transport.SharedArena.slab`), so a steady
   state of pipelined rounds allocates zero new segments.
3. **Round pipelining** — megabatches are dispatched ``workers`` at a
   time through ``submit_round_arrays`` / ``drain_round``; with
   ``pipeline_depth = 2`` (double buffering) round ``k + 1`` is packed
   while round ``k`` computes. Fault and chaos semantics are preserved
   per round: chaos injects at submission, resilient recovery happens at
   submit or drain, and slabs are recycled only after their round has
   fully drained.

Pairs the lockstep kernels cannot take (other algorithms, exotic
kwargs) fall back to per-pair specs over the same machine — still one
round-trip per round of pairs, just without cross-query vectorization.
"""

from __future__ import annotations

from collections import deque
from functools import partial

import numpy as np

from ..alphabet import encode
from ..core.combing.iterative import _flip_kernel
from ..obs import get_tracer, phase
from ..obs.metrics import get_metrics
from ..parallel.transport import (
    machine_drain_round,
    machine_localize,
    machine_recycle_slabs,
    machine_release,
    machine_slab,
    machine_submit_round,
)
from .bitlockstep import comb_bit_lockstep, pack_bit_lanes
from .lockstep import comb_lockstep, pack_lanes

#: the one algorithm with a lockstep batched variant
LOCKSTEP_ALGORITHM = "semi_antidiag_simd"
#: kwargs the lockstep kernels understand; anything else forces fallback
LOCKSTEP_KWARGS = frozenset({"blend", "use_16bit_when_possible"})


def lockstep_supported(algorithm: str, kwargs: dict) -> bool:
    """True when (algorithm, kwargs) can ride the lockstep kernels."""
    return algorithm == LOCKSTEP_ALGORITHM and set(kwargs) <= LOCKSTEP_KWARGS


def _pair_kernel(algorithm: str, ca, cb, kwargs: dict):
    """Fallback worker: one pair, one kernel (module-level, picklable)."""
    from .. import SEMILOCAL_ALGORITHMS  # lazy: avoid repro <-> batch cycle

    return SEMILOCAL_ALGORITHMS[algorithm](ca, cb, **kwargs)


def _pair_score(algorithm: str, ca, cb, kwargs: dict) -> int:
    """Fallback worker: one pair, one LCS score."""
    from .. import SEMILOCAL_ALGORITHMS
    from ..core.kernel import SemiLocalKernel

    kern = SEMILOCAL_ALGORITHMS[algorithm](ca, cb, **kwargs)
    return int(SemiLocalKernel(kern, ca.size, cb.size, validate=False).lcs_whole())


def _ceil_pow2(x: int, floor: int) -> int:
    """Smallest power of two >= max(x, floor)."""
    x = max(int(x), int(floor), 1)
    return 1 << (x - 1).bit_length() if x & (x - 1) else x


class _Pipeline:
    """Depth-bounded in-flight round queue (double buffering by default).

    ``push`` submits a round and, when the queue is full, drains the
    *oldest* first — so at most ``depth`` rounds are ever in flight and
    packing of the next round overlaps compute of the previous ones.
    """

    def __init__(self, machine, depth: int):
        self.machine = machine
        self.depth = max(1, int(depth))
        self._inflight: deque = deque()
        self.high_water = 0

    def push(self, specs, finish) -> None:
        """Submit *specs*; ``finish(results)`` runs when the round drains."""
        while len(self._inflight) >= self.depth:
            self._drain_one()
        token = machine_submit_round(self.machine, specs)
        self._inflight.append((token, finish))
        self.high_water = max(self.high_water, len(self._inflight))

    def _drain_one(self) -> None:
        token, finish = self._inflight.popleft()
        finish(machine_drain_round(token))

    def flush(self) -> None:
        while self._inflight:
            self._drain_one()

    def abort(self) -> None:
        """Best-effort drain on the error path so in-flight worker rounds
        don't leak arena segments; their results are discarded."""
        while self._inflight:
            token, _ = self._inflight.popleft()
            try:
                machine_drain_round(token)
            except Exception:
                pass


class BatchScheduler:
    """Plans and executes many-pair semi-local LCS over one machine.

    Parameters
    ----------
    machine:
        Any :class:`~repro.parallel.api.Machine` (or ``None`` to comb
        in-process — still lockstep-vectorized across lanes).
    algorithm:
        Key of :data:`repro.SEMILOCAL_ALGORITHMS`. Only
        ``semi_antidiag_simd`` (with at most ``blend`` /
        ``use_16bit_when_possible`` kwargs) runs lockstep; everything
        else falls back to per-pair dispatch.
    max_lanes:
        Megabatch width cap. Wider amortizes dispatch further but grows
        the padded working set; 64 keeps a 1k x 1k uint16 bucket's
        strand state comfortably inside L2-per-core on common machines.
    min_side:
        Bucket floor: pairs smaller than this share the smallest bucket.
    pipeline_depth:
        Maximum rounds in flight (2 = double buffering).
    """

    def __init__(
        self,
        machine=None,
        *,
        algorithm: str = LOCKSTEP_ALGORITHM,
        max_lanes: int = 64,
        min_side: int = 16,
        pipeline_depth: int = 2,
        **algo_kwargs,
    ):
        if max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        self.machine = machine
        self.algorithm = algorithm
        self.max_lanes = int(max_lanes)
        self.min_side = int(min_side)
        self.pipeline_depth = int(pipeline_depth)
        self.algo_kwargs = dict(algo_kwargs)
        #: stats of the most recent :meth:`run` (pairs, megabatches,
        #: padded/real cells, fallback pairs, per-megabatch lane counts)
        #: — long-lived callers (the serving engine) read these instead
        #: of diffing the global metrics registry between requests
        self.last_stats: dict = {}

    # -- public ---------------------------------------------------------

    def run(self, pairs, want: str = "kernels") -> list:
        """Solve every ``(a, b)`` pair; returns results in input order.

        ``want="kernels"`` -> list of ``(kernel int64 array, m, n)``;
        ``want="scores"`` -> list of int LCS scores.
        """
        if want not in ("kernels", "scores"):
            raise ValueError(f"want must be 'kernels' or 'scores', got {want!r}")
        encoded = [(encode(a), encode(b)) for a, b in pairs]
        out: list = [None] * len(encoded)
        stats = {"pairs": 0, "megabatches": 0, "padded": 0, "real": 0, "fallback": 0}
        lanes_hist: list[int] = []
        work: list[tuple[int, np.ndarray, np.ndarray]] = []
        for i, (ca, cb) in enumerate(encoded):
            m, n = ca.size, cb.size
            if m == 0 or n == 0:  # trivial: identity kernel, score 0
                if want == "kernels":
                    out[i] = (np.arange(m + n, dtype=np.int64), m, n)
                else:
                    out[i] = 0
            else:
                work.append((i, ca, cb))
        stats["pairs"] = len(encoded)
        with phase("batch"), get_tracer().span(
            "batch.run",
            args={"pairs": len(encoded), "algorithm": self.algorithm, "want": want},
        ):
            if work:
                if lockstep_supported(self.algorithm, self.algo_kwargs):
                    self._run_lockstep(work, want, out, stats, lanes_hist)
                else:
                    self._run_fallback(work, want, out, stats)
        metrics = get_metrics()
        metrics.inc("batch.pairs", stats["pairs"])
        metrics.inc("batch.megabatches", stats["megabatches"])
        metrics.inc("batch.padded_cells", stats["padded"])
        metrics.inc("batch.real_cells", stats["real"])
        metrics.inc("batch.fallback_pairs", stats["fallback"])
        hist = metrics.histogram("batch.lanes")
        for lanes in lanes_hist:
            hist.observe(lanes)
        metrics.gauge("batch.pipeline_depth").set_max(self.pipeline_depth)
        self.last_stats = {**stats, "lanes": list(lanes_hist)}
        return out

    # -- fallback path --------------------------------------------------

    def _run_fallback(self, work, want, out, stats) -> None:
        stats["fallback"] += len(work)
        worker = _pair_kernel if want == "kernels" else _pair_score
        if self.machine is None:
            for i, ca, cb in work:
                res = worker(self.algorithm, ca, cb, self.algo_kwargs)
                out[i] = (np.asarray(res, dtype=np.int64), ca.size, cb.size) if want == "kernels" else res
            return
        specs = [(worker, (self.algorithm, ca, cb, self.algo_kwargs), {}) for i, ca, cb in work]
        pipe = _Pipeline(self.machine, self.pipeline_depth)
        chunk = max(1, getattr(self.machine, "workers", 1) or 1) * 4

        def finish(batch, results):
            for (i, ca, cb), res in zip(batch, results):
                if want == "kernels":
                    local = np.asarray(machine_localize(self.machine, res), dtype=np.int64)
                    machine_release(self.machine, res)
                    out[i] = (local, ca.size, cb.size)
                else:
                    out[i] = int(res)

        try:
            for lo in range(0, len(work), chunk):
                batch = work[lo : lo + chunk]
                pipe.push(specs[lo : lo + chunk], partial(finish, batch))
            pipe.flush()
        except BaseException:
            pipe.abort()
            raise

    # -- lockstep path --------------------------------------------------

    def _run_lockstep(self, work, want, out, stats, lanes_hist) -> None:
        use_16bit = bool(self.algo_kwargs.get("use_16bit_when_possible", True))
        blend = self.algo_kwargs.get("blend", "arith")
        # orient (comb the shorter string down the rows) and bucket
        buckets: dict[tuple[int, int], list] = {}
        for i, ca, cb in work:
            flipped = ca.size > cb.size
            cx, cy = (cb, ca) if flipped else (ca, cb)
            key = (
                _ceil_pow2(cx.size, self.min_side),
                _ceil_pow2(cy.size, self.min_side),
            )
            buckets.setdefault(key, []).append((i, cx, cy, flipped))
        megabatches = []  # (M, N, [(i, cx, cy, flipped), ...])
        for (M, N), lanes in sorted(buckets.items()):
            for lo in range(0, len(lanes), self.max_lanes):
                megabatches.append((M, N, lanes[lo : lo + self.max_lanes]))
        stats["megabatches"] += len(megabatches)
        for M, N, lanes in megabatches:
            lanes_hist.append(len(lanes))
            stats["padded"] += M * N * len(lanes)
            stats["real"] += sum(cx.size * cy.size for _, cx, cy, _ in lanes)

        if self.machine is None:
            for M, N, lanes in megabatches:
                stacks = pack_lanes([(cx, cy) for _, cx, cy, _ in lanes], M, N)
                res = comb_lockstep(*stacks, blend=blend, use_16bit=use_16bit, want=want)
                self._unpack(res, lanes, want, out)
            return

        workers = max(1, getattr(self.machine, "workers", 1) or 1)
        pipe = _Pipeline(self.machine, self.pipeline_depth)

        def finish(round_batches, round_slabs, results):
            try:
                for lanes, res in zip(round_batches, results):
                    self._unpack(res, lanes, want, out)
                    machine_release(self.machine, res)
            finally:
                machine_recycle_slabs(self.machine, round_slabs)

        try:
            for lo in range(0, len(megabatches), workers):
                round_specs = []
                round_batches = []
                round_slabs: list[np.ndarray] = []

                def alloc(shape, dtype):
                    arr = machine_slab(self.machine, shape, dtype)
                    round_slabs.append(arr)
                    return arr

                for M, N, lanes in megabatches[lo : lo + workers]:
                    stacks = pack_lanes(
                        [(cx, cy) for _, cx, cy, _ in lanes], M, N, alloc=alloc
                    )
                    round_specs.append(
                        (
                            comb_lockstep,
                            stacks,
                            {"blend": blend, "use_16bit": use_16bit, "want": want},
                        )
                    )
                    round_batches.append(lanes)
                pipe.push(round_specs, partial(finish, round_batches, round_slabs))
            pipe.flush()
        except BaseException:
            pipe.abort()
            raise

    def _unpack(self, res, lanes, want, out) -> None:
        if want == "scores":
            for (i, _, _, _), score in zip(lanes, np.asarray(res)):
                out[i] = int(score)
            return
        res = np.asarray(res)
        for k, (i, cx, cy, flipped) in enumerate(lanes):
            m, n = cx.size, cy.size
            kern = res[k, : m + n].astype(np.int64)  # copies out of any arena
            if flipped:
                kern = _flip_kernel(kern, m, n)
            out[i] = (kern, (n if flipped else m), (m if flipped else n))


def run_bit_batches(
    pairs,
    *,
    machine=None,
    w: int = 64,
    max_lanes: int = 64,
    pipeline_depth: int = 2,
) -> np.ndarray:
    """Batched bit-parallel LCS scores for binary *code* pairs.

    Pairs are bucketed by power-of-two word counts, packed to a shared
    word count per megabatch (validity masks absorb the padding) and
    dispatched over *machine* with the same pipelining as the lockstep
    path. Returns the ``(len(pairs),)`` int64 scores.
    """
    out = np.zeros(len(pairs), dtype=np.int64)
    buckets: dict[tuple[int, int], list] = {}
    for i, (ca, cb) in enumerate(pairs):
        if ca.size == 0 or cb.size == 0:
            continue  # score 0
        key = (
            _ceil_pow2(max(1, -(-ca.size // w)), 1),
            _ceil_pow2(max(1, -(-cb.size // w)), 1),
        )
        buckets.setdefault(key, []).append((i, ca, cb))
    megabatches = []
    for key, lanes in sorted(buckets.items()):
        for lo in range(0, len(lanes), max_lanes):
            megabatches.append(lanes[lo : lo + max_lanes])
    metrics = get_metrics()
    metrics.inc("batch.pairs", len(pairs))
    metrics.inc("batch.megabatches", len(megabatches))
    hist = metrics.histogram("batch.lanes")
    for mb in megabatches:
        hist.observe(len(mb))

    def finish(round_batches, results):
        for lanes, scores in zip(round_batches, results):
            scores = np.asarray(machine_localize(machine, scores))
            machine_release(machine, scores)
            for (i, _, _), s in zip(lanes, scores):
                out[i] = int(s)

    with phase("batch"), get_tracer().span(
        "batch.bit_run", args={"pairs": len(pairs), "w": w}
    ):
        if machine is None:
            for lanes in megabatches:
                stacks = pack_bit_lanes([(ca, cb) for _, ca, cb in lanes], w)
                finish([lanes], [comb_bit_lockstep(*stacks, w=w)])
            return out
        workers = max(1, getattr(machine, "workers", 1) or 1)
        pipe = _Pipeline(machine, pipeline_depth)
        try:
            for lo in range(0, len(megabatches), workers):
                round_specs = []
                round_batches = []
                for lanes in megabatches[lo : lo + workers]:
                    stacks = pack_bit_lanes([(ca, cb) for _, ca, cb in lanes], w)
                    round_specs.append((comb_bit_lockstep, stacks, {"w": w}))
                    round_batches.append(lanes)
                pipe.push(round_specs, partial(finish, round_batches))
            pipe.flush()
        except BaseException:
            pipe.abort()
            raise
    return out
