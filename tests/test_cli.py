"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestLcs:
    def test_score(self, capsys):
        assert main(["lcs", "design", "define"]) == 0
        assert "= 4" in capsys.readouterr().out

    def test_witness(self, capsys):
        main(["lcs", "abc", "abc", "--witness"])
        assert "'abc'" in capsys.readouterr().out


class TestSemilocal:
    def test_basic(self, capsys):
        assert main(["semilocal", "abcab", "acaba"]) == 0
        out = capsys.readouterr().out
        assert "LCS(a, b)" in out

    def test_h_matrix(self, capsys):
        assert main(["semilocal", "ab", "ba", "--h-matrix"]) == 0
        assert "[" in capsys.readouterr().out

    def test_h_matrix_too_large(self, capsys):
        assert main(["semilocal", "a" * 60, "b" * 60, "--h-matrix"]) == 1

    def test_query(self, capsys):
        assert main(["semilocal", "abc", "abcabc", "--query", "string-substring", "0", "3"]) == 0
        assert "string-substring(0, 3) = 3" in capsys.readouterr().out


class TestBitAndTrace:
    def test_bit(self, capsys):
        assert main(["bit", "1000", "0100"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_bit_variants(self, capsys):
        for v in ("old", "new1", "new2"):
            main(["bit", "1100", "0110", "--variant", v])
        outs = capsys.readouterr().out.split()
        assert len(set(outs)) == 1

    def test_trace(self, capsys):
        assert main(["trace", "1000", "0100"]) == 0
        assert "anti-diagonal" in capsys.readouterr().out


class TestBraid:
    def test_ascii(self, capsys):
        assert main(["braid", "ab", "ba"]) == 0
        out = capsys.readouterr().out
        assert "kernel:" in out

    def test_svg(self, tmp_path, capsys):
        svg = tmp_path / "braid.svg"
        assert main(["braid", "ab", "ba", "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")


class TestDiff:
    def test_diff_files(self, tmp_path, capsys):
        old = tmp_path / "old.txt"
        new = tmp_path / "new.txt"
        old.write_text("a\nb\nc\n")
        new.write_text("a\nc\nd\n")
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "-b" in out and "+d" in out and "similarity" in out


class TestParallel:
    def test_serial_backend(self, capsys):
        assert main(["parallel", "abcab", "acaba"]) == 0
        out = capsys.readouterr().out
        assert "LCS(a, b) = 4" in out
        assert "degraded_rounds: 0" in out

    def test_chaos_with_retries_still_correct(self, capsys):
        assert (
            main(
                ["parallel", "abcabcab", "acabacba", "--chaos-fail-rate", "0.3",
                 "--retries", "3", "--seed", "5"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "LCS(a, b) = 6" in out

    def test_chaos_without_retries_degrades(self, capsys):
        import warnings

        from repro.errors import DegradedExecutionWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedExecutionWarning)
            assert (
                main(
                    ["parallel", "abcab", "acaba", "--chaos-fail-rate", "1.0",
                     "--retries", "0"]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "LCS(a, b) = 4" in out

    def test_algorithms_agree(self, capsys):
        for algo in ("hybrid", "combing", "load-balanced", "steady-ant"):
            assert main(["parallel", "abcabc", "bcabca", "--algorithm", algo]) == 0
        outs = [l for l in capsys.readouterr().out.splitlines() if l.startswith("LCS")]
        assert len(set(outs)) == 1


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "fig9e" in out

    def test_unknown(self, capsys):
        assert main(["bench", "fig99"]) == 1

    def test_run_one(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        assert main(["bench", "fig9b"]) == 0
        assert "bit_new_2" in capsys.readouterr().out


class TestGenomes:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "strains.fasta"
        assert main(["genomes", "--preset", "phage-ms2", "--count", "2", "--output", str(out)]) == 0
        text = out.read_text()
        assert text.count(">") == 2

    def test_unknown_preset(self):
        assert main(["genomes", "--preset", "unicorn"]) == 1
