"""Cross-query lockstep combing: one wavefront sweep, many grids.

The anti-diagonal SIMD comber (:func:`repro.core.combing.iterative.
iterative_combing_antidiag_simd`) pays one Python/NumPy dispatch per
anti-diagonal of *one* grid. For a batch of B independent same-shape
problems the same wavefront structure vectorizes *across* queries:
strand arrays gain a trailing lane axis — ``h`` is ``(M, B)``, ``v`` is
``(N, B)`` — and each anti-diagonal update combs the corresponding cell
of all B grids in one element-wise operation, turning ``O(B * diags)``
dispatches into ``O(diags)``.

Layout is positions-major ``(positions, lanes)``: each diagonal touches
a contiguous row slice of ``h``/``v``, so every inner-loop operand is a
contiguous 2-D block.

Ragged lanes (the common case) are padded to the bucket shape ``(M, N)``
with *validity masks*, the same discipline as
:mod:`repro.core.bitparallel.words`: lane ``k`` with real shape
``(m_k, n_k)`` stores ``a`` reversed at the *bottom* of its column
(rows ``M - m_k ..``) and ``b`` at the *left* (columns ``0 .. n_k``),
and the combing condition is AND-ed with ``h_valid & b_valid`` so
padding cells never swap. Because strand ids initialize positionally,
the padded run is exactly the real run with every strand id shifted by
``M - m_k`` — extraction subtracts the shift back out. Padding
character values are irrelevant (matches at invalid cells are masked),
so no sentinel symbol is needed and negative codes are safe.

The default ``arith`` lane blend is the branch-free arithmetic swap
``d = (v - h) * p; h += d; v -= d`` on preallocated scratch — exact even
for ``uint16`` strands under modular arithmetic, and the fastest blend
measured (no per-diagonal allocation at all). The other blends reuse the
select idioms of the single-pair comber.
"""

from __future__ import annotations

import numpy as np

from ..core.combing.iterative import (
    _BLENDS,
    _UNSIGNED_LIMIT_16,
    _antidiag_ranges,
    _extract_kernel,
    _minmax_select,
)

#: lane blends supported by :func:`comb_lockstep`
BATCH_BLENDS = ("where", "masked", "arith", "bitwise", "minmax")


def lockstep_strand_dtype(M: int, N: int, use_16bit: bool = True) -> np.dtype:
    """Strand dtype for a bucket of shape ``(M, N)``: ``uint16`` when all
    ``M + N`` strand ids fit (halved memory traffic), else ``int64``."""
    if use_16bit and M + N <= _UNSIGNED_LIMIT_16:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


def code_dtype_for(pairs) -> np.dtype:
    """Smallest signed integer dtype holding every code of *pairs*."""
    lo = 0
    hi = 0
    for ca, cb in pairs:
        for c in (ca, cb):
            if c.size:
                lo = min(lo, int(c.min()))
                hi = max(hi, int(c.max()))
    for dt in (np.int16, np.int32):
        info = np.iinfo(dt)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dt)
    return np.dtype(np.int64)


def pack_lanes(
    pairs,
    M: int,
    N: int,
    *,
    alloc=None,
):
    """Pack oriented encoded *pairs* (each ``m <= n``, both nonempty) into
    lane stacks for :func:`comb_lockstep`.

    Returns ``(a_rev, b_codes, h_valid, b_valid, lane_m, lane_n)``;
    ``h_valid``/``b_valid`` are ``None`` for a uniform batch (every lane
    exactly ``(M, N)``). *alloc* supplies the four big arrays (e.g. from
    a shared-memory slab pool); it may return uninitialized memory — the
    packing fully initializes every cell the kernels read.
    """
    if alloc is None:
        alloc = lambda shape, dtype: np.empty(shape, dtype=dtype)  # noqa: E731
    B = len(pairs)
    code_dt = code_dtype_for(pairs)
    a_rev = alloc((M, B), code_dt)
    b_codes = alloc((N, B), code_dt)
    lane_m = np.empty(B, dtype=np.int64)
    lane_n = np.empty(B, dtype=np.int64)
    uniform = all(ca.size == M and cb.size == N for ca, cb in pairs)
    if uniform:
        h_valid = b_valid = None
    else:
        h_valid = alloc((M, B), np.bool_)
        b_valid = alloc((N, B), np.bool_)
        h_valid[...] = False
        b_valid[...] = False
        # padding codes are never compared (validity gates every match),
        # but slab memory arrives dirty — zero for reproducible bytes
        a_rev[...] = 0
        b_codes[...] = 0
    for k, (ca, cb) in enumerate(pairs):
        m, n = ca.size, cb.size
        a_rev[M - m :, k] = ca[::-1]
        b_codes[:n, k] = cb
        if h_valid is not None:
            h_valid[M - m :, k] = True
            b_valid[:n, k] = True
        lane_m[k] = m
        lane_n[k] = n
    return a_rev, b_codes, h_valid, b_valid, lane_m, lane_n


def _comb_arith(a_rev, b_codes, h, v, h_valid, b_valid) -> None:
    """The fast path: in-place arithmetic swap on preallocated scratch."""
    M, B = h.shape
    N = v.shape[0]
    W = min(M, N)
    p = np.empty((W, B), dtype=np.bool_)
    q = np.empty((W, B), dtype=np.bool_)
    d = np.empty((W, B), dtype=h.dtype)
    for length, h_lo, v_lo in _antidiag_ranges(M, N):
        h_sl = slice(h_lo, h_lo + length)
        v_sl = slice(v_lo, v_lo + length)
        hh = h[h_sl]
        vv = v[v_sl]
        pp = p[:length]
        qq = q[:length]
        dd = d[:length]
        np.equal(a_rev[h_sl], b_codes[v_sl], out=pp)
        np.greater(hh, vv, out=qq)
        np.logical_or(pp, qq, out=pp)
        if h_valid is not None:
            np.logical_and(pp, h_valid[h_sl], out=pp)
            np.logical_and(pp, b_valid[v_sl], out=pp)
        # swap iff pp: exact under modular arithmetic for unsigned dtypes
        np.subtract(vv, hh, out=dd)
        np.multiply(dd, pp, out=dd, casting="unsafe")
        np.add(hh, dd, out=hh)
        np.subtract(vv, dd, out=vv)


def _comb_generic(a_rev, b_codes, h, v, h_valid, b_valid, blend: str) -> None:
    """The remaining blends via the single-pair select idioms."""
    M = h.shape[0]
    N = v.shape[0]
    minmax = blend == "minmax"
    select = None if minmax else _BLENDS[blend]
    for length, h_lo, v_lo in _antidiag_ranges(M, N):
        h_sl = slice(h_lo, h_lo + length)
        v_sl = slice(v_lo, v_lo + length)
        hh = h[h_sl]
        vv = v[v_sl]
        if h_valid is not None:
            valid = h_valid[h_sl] & b_valid[v_sl]
        else:
            valid = None
        if minmax:
            match = np.equal(a_rev[h_sl], b_codes[v_sl])
            if valid is not None:
                match &= valid
            new_h, new_v = _minmax_select(hh, vv, match)
            if valid is not None:
                # min/max sorts even unmatched lanes: undo it at padding
                # cells, which must stay untouched
                invalid = ~valid
                np.copyto(new_h, hh, where=invalid)
                np.copyto(new_v, vv, where=invalid)
        else:
            cond = np.equal(a_rev[h_sl], b_codes[v_sl]) | np.greater(hh, vv)
            if valid is not None:
                cond &= valid
            new_h, new_v = select(hh, vv, cond)
        h[h_sl] = new_h
        v[v_sl] = new_v


def _lane_scores(v, b_valid, lane_n, M: int) -> np.ndarray:
    """Per-lane LCS scores straight from the final vertical strands.

    A strand exiting the bottom edge at column ``j < n_k`` with (real)
    start id ``>= m_k`` witnesses one unit of distance; in padded
    coordinates that is exactly ``v >= M`` (real ids are shifted by
    ``M - m_k``, so ``real >= m_k  <=>  padded >= M``). Hence
    ``score_k = n_k - #(v[:, k] >= M valid)``.
    """
    cross = v >= v.dtype.type(M)
    if b_valid is not None:
        cross &= b_valid
    return (lane_n - cross.sum(axis=0, dtype=np.int64)).astype(np.int64)


def _lane_kernels(h, v, lane_m, lane_n, M: int, N: int) -> np.ndarray:
    """Per-lane kernel extraction into a ``(B, M + N)`` stack.

    Lane ``k``'s kernel occupies ``out[k, : m_k + n_k]``; the tail is
    zero. Real strands live in rows ``M - m_k ..`` of ``h`` and columns
    ``0 .. n_k`` of ``v``, uniformly shifted by ``M - m_k``.
    """
    B = h.shape[1]
    out_dt = np.uint16 if M + N <= _UNSIGNED_LIMIT_16 else np.int64
    out = np.zeros((B, M + N), dtype=out_dt)
    h64 = h.astype(np.int64)
    v64 = v.astype(np.int64)
    for k in range(B):
        m = int(lane_m[k])
        n = int(lane_n[k])
        shift = M - m
        h_fin = h64[shift:, k] - shift
        v_fin = v64[:n, k] - shift
        out[k, : m + n] = _extract_kernel(h_fin, v_fin)
    return out


def comb_lockstep(
    a_rev,
    b_codes,
    h_valid,
    b_valid,
    lane_m,
    lane_n,
    blend: str = "arith",
    use_16bit: bool = True,
    want: str = "kernels",
):
    """Comb B independent grids in lockstep (module-level, picklable —
    this is the worker function batch rounds ship to processes).

    Inputs are the stacks produced by :func:`pack_lanes`. Returns a
    ``(B, M + N)`` kernel stack (``want="kernels"``; lane ``k`` uses the
    first ``m_k + n_k`` entries) or a ``(B,)`` int64 score vector
    (``want="scores"``).
    """
    if blend not in BATCH_BLENDS:
        raise ValueError(f"unknown blend {blend!r}; available: {BATCH_BLENDS}")
    if want not in ("kernels", "scores"):
        raise ValueError(f"want must be 'kernels' or 'scores', got {want!r}")
    M, B = a_rev.shape
    N = b_codes.shape[0]
    dt = lockstep_strand_dtype(M, N, use_16bit)
    h = np.empty((M, B), dtype=dt)
    v = np.empty((N, B), dtype=dt)
    h[:] = np.arange(M, dtype=dt)[:, None]
    v[:] = np.arange(M, M + N, dtype=dt)[:, None]
    if blend == "arith":
        _comb_arith(a_rev, b_codes, h, v, h_valid, b_valid)
    else:
        _comb_generic(a_rev, b_codes, h, v, h_valid, b_valid, blend)
    if want == "scores":
        return _lane_scores(v, b_valid, lane_n, M)
    return _lane_kernels(h, v, lane_m, lane_n, M, N)
