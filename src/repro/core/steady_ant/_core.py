"""Shared building blocks of the steady-ant algorithm.

Terminology follows Listing 2 of the paper. For permutations ``P`` and
``Q`` of order ``n`` (row form), the product ``R = P ⊙ Q`` is defined by
the (min,+) product of distribution matrices

    R_sigma(i, k) = min_j  P_sigma(i, j) + Q_sigma(j, k),

where ``X_sigma(i, j) = #{(r, c) in X : r >= i, c < j}``.

Divide step: ``P`` is split by *columns* into its low half ``P_lo``
(columns ``< h``) and high half; ``Q`` by *rows*. The split-off halves are
compacted to order-``h`` permutations, multiplied recursively, and the
results re-expanded into ``n x n`` sub-permutations ``R_lo``/``R_hi``
whose rows and columns partition ``[0, n)``.

Conquer step ("ant passage"): writing

    delta(i, k) = #{R_lo : row >= i, col >= k} - #{R_hi : row < i, col < k}

one shows ``R_sigma = min(d_lo, d_hi)`` with the lo-term winning exactly
where ``delta >= 0``. ``delta`` is nonincreasing when moving right and
nondecreasing when moving up, so the region boundary is a monotone
staircase from the bottom-left corner ``(n, 0)`` to the top-right corner
``(0, n)`` of the distribution grid. The *ant* traces it in O(n): in its
wake, ``R_lo`` nonzeros strictly inside the lo region and ``R_hi``
nonzeros strictly inside the hi region survive ("good nonzeros"), and the
O(n) boundary cells are resolved by explicit mixed-difference formulas —
this is where "fresh" nonzeros appear and "bad" ones are deleted.

The mixed-difference case analysis (cell ``(r, c)``, staircase height
``t(k) = max{i : delta(i, k) >= 0}``):

======================  ==========================================
corner configuration     R(r, c)
======================  ==========================================
all four lo              R_lo(r, c)
all four hi              R_hi(r, c)
r = t(c) = t(c+1)        [col c: lo with row >= r, or hi with row <= r]
r = t(c) > t(c+1)        R_hi(r, c) + delta(r, c)
t(c+1) = r < t(c)        R_lo(r, c) - delta(r+1, c+1)
t(c+1) < r < t(c)        [row r: hi with col <= c]
======================  ==========================================

Each is verified against the dense (min,+) reference in
``tests/core/test_steady_ant.py`` over thousands of random permutations.
"""

from __future__ import annotations

import numpy as np

from ...types import PermArray


def resolve_multiply(vectorize: bool, base_order: int | None = None):
    """Map the public ``vectorize=`` knob to a multiply callable.

    ``None`` when *vectorize* is off — the caller keeps its scalar
    recursion. Otherwise a closure over the level-vectorized engine of
    :mod:`.vectorized` (lazy import: that module builds on this one),
    stopping at *base_order* (its measured default when ``None``).
    """
    if not vectorize:
        return None
    from .vectorized import DEFAULT_BASE_ORDER, _multiply_vectorized

    order = DEFAULT_BASE_ORDER if base_order is None else base_order
    return lambda p, q: _multiply_vectorized(p, q, order)


def split_p(p: np.ndarray, h: int):
    """Split P by columns at *h*; return compacted halves + row mappings."""
    mask_lo = p < h
    rows_lo = np.nonzero(mask_lo)[0]
    rows_hi = np.nonzero(~mask_lo)[0]
    p_lo = p[rows_lo]  # already a permutation of [0, h)
    p_hi = p[rows_hi] - h
    return p_lo, rows_lo, p_hi, rows_hi


def split_q(q: np.ndarray, h: int):
    """Split Q by rows at *h*; return compacted halves + column mappings."""
    cols_lo = np.sort(q[:h])
    cols_hi = np.sort(q[h:])
    q_lo = np.searchsorted(cols_lo, q[:h])
    q_hi = np.searchsorted(cols_hi, q[h:])
    return q_lo, cols_lo, q_hi, cols_hi


def combine(
    rows_lo: np.ndarray,
    lo_cols_full: np.ndarray,
    rows_hi: np.ndarray,
    hi_cols_full: np.ndarray,
    n: int,
) -> PermArray:
    """Ant passage + filtering: merge ``R_lo`` and ``R_hi`` into ``R``.

    ``R_lo`` nonzeros are ``(rows_lo[t], lo_cols_full[t])`` and ``R_hi``
    nonzeros ``(rows_hi[t], hi_cols_full[t])``; rows and columns of the
    two sub-permutations partition ``[0, n)``. Runs in O(n) Python-level
    work (the walk is inherently sequential).
    """
    if n < 64:
        # NumPy setup costs dominate tiny nodes; use plain lists throughout
        rc = [0] * n
        rl = [False] * n
        cr = [0] * n
        cl = [False] * n
        for r, c in zip(rows_lo.tolist(), lo_cols_full.tolist()):
            rc[r] = c
            rl[r] = True
            cr[c] = r
            cl[c] = True
        for r, c in zip(rows_hi.tolist(), hi_cols_full.tolist()):
            rc[r] = c
            cr[c] = r
        return _combine_small(rows_lo, lo_cols_full, rows_hi, hi_cols_full, n, rc, rl, cr, cl)

    row_col = np.empty(n, dtype=np.int64)
    row_is_lo = np.zeros(n, dtype=bool)
    col_row = np.empty(n, dtype=np.int64)
    col_is_lo = np.zeros(n, dtype=bool)
    row_col[rows_lo] = lo_cols_full
    row_is_lo[rows_lo] = True
    row_col[rows_hi] = hi_cols_full
    col_row[lo_cols_full] = rows_lo
    col_is_lo[lo_cols_full] = True
    col_row[hi_cols_full] = rows_hi

    # plain Python lists: the walk does O(n) scalar accesses and NumPy
    # scalar indexing would dominate the running time
    rc = row_col.tolist()
    rl = row_is_lo.tolist()
    cr = col_row.tolist()
    cl = col_is_lo.tolist()

    # --- the ant walk: staircase t[k] and delta at each (t[k], k) -------
    t = [0] * (n + 1)
    delta_at_t = [0] * (n + 1)
    t[0] = n
    i = n
    delta = 0
    for k in range(n):
        # step right: (i, k) -> (i, k+1)
        crow = cr[k]
        if (crow >= i) if cl[k] else (crow < i):
            delta -= 1
        # climb while the lo term has lost the minimum
        if delta < 0:
            k1 = k + 1
            while delta < 0:
                r = i - 1
                if (rc[r] >= k1) if rl[r] else (rc[r] < k1):
                    delta += 1
                i = r
        t[k + 1] = i
        delta_at_t[k + 1] = delta

    t_arr = np.asarray(t, dtype=np.int64)
    out = np.full(n, -1, dtype=np.int64)

    # --- good nonzeros (vectorized survival filters) ---------------------
    lo_keep = (rows_lo + 1) <= t_arr[lo_cols_full + 1]  # all corners lo
    out[rows_lo[lo_keep]] = lo_cols_full[lo_keep]
    hi_keep = rows_hi > t_arr[hi_cols_full]  # all corners hi
    out[rows_hi[hi_keep]] = hi_cols_full[hi_keep]

    # --- boundary cells: mixed-difference case analysis ------------------
    mixed_rows: list[int] = []
    mixed_cols: list[int] = []
    last_row = n - 1
    for c in range(n):
        tc = t[c]
        tc1 = t[c + 1]
        r_hi = tc if tc <= last_row else last_row
        r = tc1 if tc1 > 0 else 0
        while r <= r_hi:
            if r == tc:
                if r == tc1:
                    # top corners lo, bottom corners hi
                    if (cr[c] >= r) if cl[c] else (cr[c] <= r):
                        mixed_rows.append(r)
                        mixed_cols.append(c)
                else:
                    # only the top-left corner is lo
                    if delta_at_t[c] or ((not cl[c]) and cr[c] == r):
                        mixed_rows.append(r)
                        mixed_cols.append(c)
            elif r == tc1:
                # all corners lo except bottom-right:
                # delta(r+1, c+1) = delta(t[c+1], c+1) - up-step at row r
                up = 1 if ((rc[r] >= c + 1) if rl[r] else (rc[r] < c + 1)) else 0
                if (1 if (cl[c] and cr[c] == r) else 0) - (delta_at_t[c + 1] - up):
                    mixed_rows.append(r)
                    mixed_cols.append(c)
            else:
                # left corners lo, right corners hi
                if (not rl[r]) and rc[r] <= c:
                    mixed_rows.append(r)
                    mixed_cols.append(c)
            r += 1
    if mixed_rows:
        out[np.asarray(mixed_rows)] = np.asarray(mixed_cols)

    return out


def _combine_small(rows_lo, lo_cols_full, rows_hi, hi_cols_full, n, rc, rl, cr, cl):
    """Pure-Python combine for small orders (same logic as :func:`combine`)."""
    t = [0] * (n + 1)
    delta_at_t = [0] * (n + 1)
    t[0] = n
    i = n
    delta = 0
    for k in range(n):
        crow = cr[k]
        if (crow >= i) if cl[k] else (crow < i):
            delta -= 1
        if delta < 0:
            k1 = k + 1
            while delta < 0:
                r = i - 1
                if (rc[r] >= k1) if rl[r] else (rc[r] < k1):
                    delta += 1
                i = r
        t[k + 1] = i
        delta_at_t[k + 1] = delta

    out = [-1] * n
    for r, c in zip(rows_lo.tolist(), lo_cols_full.tolist()):
        if r + 1 <= t[c + 1]:
            out[r] = c
    for r, c in zip(rows_hi.tolist(), hi_cols_full.tolist()):
        if r > t[c]:
            out[r] = c

    last_row = n - 1
    for c in range(n):
        tc = t[c]
        tc1 = t[c + 1]
        r_hi = tc if tc <= last_row else last_row
        r = tc1 if tc1 > 0 else 0
        while r <= r_hi:
            if r == tc:
                if r == tc1:
                    if (cr[c] >= r) if cl[c] else (cr[c] <= r):
                        out[r] = c
                else:
                    if delta_at_t[c] or ((not cl[c]) and cr[c] == r):
                        out[r] = c
            elif r == tc1:
                up = 1 if ((rc[r] >= c + 1) if rl[r] else (rc[r] < c + 1)) else 0
                if (1 if (cl[c] and cr[c] == r) else 0) - (delta_at_t[c + 1] - up):
                    out[r] = c
            else:
                if (not rl[r]) and rc[r] <= c:
                    out[r] = c
            r += 1

    return np.asarray(out, dtype=np.int64)
