"""repro.serve — the long-lived serving tier.

One-shot CLI runs pay build-run-teardown per invocation; production
traffic needs a persistent process that keeps the expensive artifacts
warm and survives misbehaving clients and faulty workers. This package
provides that tier in three layers:

- :mod:`repro.serve.engine` — :class:`Engine`, the warm build-run-
  teardown lifecycle (machine pool, steady-ant precalc table,
  shared-memory slab pools) behind idempotent ``start()`` / ``drain()``
  / ``close()``;
- :mod:`repro.serve.server` — :class:`LcsServer`, the asyncio
  continuous-batching daemon with admission control, backpressure,
  per-client quotas (:mod:`repro.serve.quota`), deadlines, structured
  overload errors and graceful SIGTERM drain, speaking the
  newline-delimited JSON protocol of :mod:`repro.serve.protocol`;
- :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  client used by ``repro-lcs client`` and the test suite.

Quickstart (see the README "Serving" section for the wire protocol)::

    engine = Engine(backend="processes", workers=4, transport="shm")
    server = LcsServer(engine, ServerConfig(port=7070, quota_rate=100))
    await server.start()
    await server.serve_forever()   # returns after a SIGTERM drain
"""

from __future__ import annotations

from .client import ServeClient
from .engine import Engine
from .protocol import ERROR_CODES
from .quota import QuotaTable, TokenBucket
from .server import LcsServer, ServerConfig

__all__ = [
    "Engine",
    "LcsServer",
    "ServerConfig",
    "ServeClient",
    "QuotaTable",
    "TokenBucket",
    "ERROR_CODES",
]
