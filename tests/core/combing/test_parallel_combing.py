"""Tests for machine-parameterized parallel combing (Listings 4, 6, 7)."""

import numpy as np
import pytest

from repro.core.combing.iterative import iterative_combing_rowmajor
from repro.core.combing.parallel import (
    _chunks,
    parallel_hybrid_combing_grid,
    parallel_iterative_combing,
    parallel_load_balanced_combing,
)
from repro.parallel import SerialMachine, SimulatedMachine, ThreadMachine

from ...conftest import random_codes, random_pair

PARALLEL_FNS = [
    parallel_iterative_combing,
    parallel_load_balanced_combing,
    parallel_hybrid_combing_grid,
]


class TestChunks:
    def test_partition(self):
        chunks = _chunks(10, 3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]

    def test_more_workers_than_items(self):
        assert _chunks(2, 8) == [(0, 1), (1, 2)]

    def test_single_worker(self):
        assert _chunks(5, 1) == [(0, 5)]


@pytest.mark.parametrize("fn", PARALLEL_FNS, ids=lambda f: f.__name__)
class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_matches_sequential(self, fn, workers, rng):
        for _ in range(8):
            a, b = random_pair(rng, max_len=13)
            machine = SimulatedMachine(workers=workers)
            got = fn(a, b, machine)
            assert np.array_equal(got, iterative_combing_rowmajor(a, b)), (a, b, workers)

    def test_on_serial_machine(self, fn, rng):
        a, b = random_pair(rng, max_len=10)
        got = fn(a, b, SerialMachine())
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))

    def test_tall_grid_flip(self, fn, rng):
        a = random_codes(rng, 11)
        b = random_codes(rng, 4)
        got = fn(a, b, SimulatedMachine(workers=3))
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))

    def test_empty(self, fn):
        got = fn([], [1, 2], SimulatedMachine(workers=2))
        assert got.tolist() == [0, 1]


class TestAccounting:
    def test_rounds_counted(self, rng):
        a = random_codes(rng, 6)
        b = random_codes(rng, 8)
        machine = SimulatedMachine(workers=2)
        parallel_iterative_combing(a, b, machine)
        # one round per anti-diagonal
        assert machine.rounds == 6 + 8 - 1
        assert machine.elapsed > 0

    def test_load_balanced_fewer_rounds(self, rng):
        """Joint phase-1/3 rounds reduce the number of synchronizations."""
        a = random_codes(rng, 10)
        b = random_codes(rng, 12)
        m_plain = SimulatedMachine(workers=4)
        parallel_iterative_combing(a, b, m_plain)
        m_lb = SimulatedMachine(workers=4)
        parallel_load_balanced_combing(a, b, m_lb)
        assert m_lb.rounds < m_plain.rounds

    def test_hybrid_grid_round_structure(self, rng):
        a = random_codes(rng, 16)
        b = random_codes(rng, 16)
        machine = SimulatedMachine(workers=4)
        parallel_hybrid_combing_grid(a, b, machine, n_tasks=4)
        # 1 leaf round + log-many reduction rounds
        assert 2 <= machine.rounds <= 6

    def test_thread_machine_works(self, rng):
        a, b = random_pair(rng, max_len=8)
        with ThreadMachine(workers=2) as machine:
            got = parallel_iterative_combing(a, b, machine)
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))
