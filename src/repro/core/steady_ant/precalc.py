"""Steady ant with precomputed products of small permutations ("precalc").

The paper (§4.2.1, footnote 6) cuts off the bottom of the recursion tree
by tabulating the products of all pairs of permutation matrices of order
up to 5 — ``(5!)^2 = 14400`` pairs, plus all smaller orders. Each matrix
is packed into a 32-bit machine word as 8 tetrades, the k-th tetrade
holding the column index of the nonzero in row k; we reproduce exactly
that packing.

The table is built lazily on first use and shared process-wide.
"""

from __future__ import annotations

import os
import threading
from itertools import permutations

import numpy as np

from ...errors import ShapeMismatchError
from ...obs.metrics import inc as _metric_inc
from ...types import PermArray
from ..dist_matrix import sticky_multiply_dense
from ._core import combine, split_p, split_q

#: Paper's table order: all products of permutations of order <= 5.
DEFAULT_MAX_ORDER = 5


def pack(perm) -> int:
    """Pack a permutation of order <= 8 into an int as 4-bit tetrades."""
    word = 0
    for k, col in enumerate(perm):
        word |= int(col) << (4 * k)
    return word


def unpack(word: int, n: int) -> np.ndarray:
    """Inverse of :func:`pack`."""
    return np.asarray([(word >> (4 * k)) & 0xF for k in range(n)], dtype=np.int64)


#: Environment override for the table construction strategy —
#: ``"vectorized"`` (default: one batched dense (min,+) product per
#: order, ~50x faster cold start) or ``"scalar"`` (the original 15017
#: scalar dense products; the perf benchmarks use it to reproduce
#: pre-vectorization cold-build semantics honestly).
PRECALC_BUILD_ENV = "REPRO_PRECALC_BUILD"


class PrecalcTable:
    """Products of all permutation pairs of order up to ``max_order``.

    ``lookup(packed_p, packed_q, n)`` returns the packed product in O(1).

    ``build`` selects the construction strategy (``"vectorized"`` /
    ``"scalar"``); when ``None`` the :data:`PRECALC_BUILD_ENV`
    environment variable decides, defaulting to ``"vectorized"``. Both
    strategies produce identical tables (equality-tested) — the
    vectorized one computes each order's ``(n!)^2`` products as a single
    batch via :func:`~.vectorized.batch_sticky_multiply`, which matters
    because every worker process pays this build once.
    """

    def __init__(self, max_order: int = DEFAULT_MAX_ORDER, *, build: str | None = None):
        if not 1 <= max_order <= 8:
            raise ValueError("max_order must be in [1, 8] (tetrade packing)")
        if build is None:
            build = os.environ.get(PRECALC_BUILD_ENV, "vectorized")
        if build not in ("vectorized", "scalar"):
            raise ValueError(f"unknown precalc build strategy {build!r}")
        self.max_order = max_order
        self.build = build
        self._tables: list[dict[tuple[int, int], int]] = [dict() for _ in range(max_order + 1)]
        self._unpacked_cache: dict[tuple[int, int], np.ndarray] = {}
        if build == "vectorized":
            from .vectorized import build_precalc_products

            for n, packed_p, packed_q, packed_r in build_precalc_products(max_order):
                table = self._tables[n]
                for pp, qp, rp in zip(packed_p.tolist(), packed_q.tolist(), packed_r.tolist()):
                    table[(pp, qp)] = rp
            return
        for n in range(1, max_order + 1):
            table = self._tables[n]
            perms = [np.asarray(p, dtype=np.int64) for p in permutations(range(n))]
            packed = [pack(p) for p in perms]
            # products via the small sticky multiplication helper below
            for pi, pp in zip(perms, packed):
                for qi, qp in zip(perms, packed):
                    table[(pp, qp)] = pack(_small_multiply(pi, qi))

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables)

    def lookup_packed(self, packed_p: int, packed_q: int, n: int) -> int:
        return self._tables[n][(packed_p, packed_q)]

    def multiply(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Table-driven product of two small permutations."""
        n = p.size
        word = self._tables[n][(pack(p), pack(q))]
        cached = self._unpacked_cache.get((word, n))
        if cached is None:
            cached = unpack(word, n)
            self._unpacked_cache[(word, n)] = cached
        return cached


def _small_multiply(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Exact sticky product for tiny orders (dense reference)."""
    return sticky_multiply_dense(p, q)


_shared_tables: dict[int, PrecalcTable] = {}
_shared_tables_lock = threading.Lock()


def get_precalc_table(max_order: int = DEFAULT_MAX_ORDER) -> PrecalcTable:
    """Process-wide shared table, built at most once per ``max_order``.

    The warm-once guard matters for batch workers: a process pool worker
    serving many steady-ant sub-tasks per round must pay the ``(5!)^2``
    table construction exactly once, not once per round. Double-checked
    locking keeps the hot path lock-free; ``steady_ant.precalc_builds`` /
    ``steady_ant.precalc_hits`` count constructions vs. cache answers
    (collected from workers like any other metric delta).
    """
    table = _shared_tables.get(max_order)
    if table is not None:
        _metric_inc("steady_ant.precalc_hits", 1)
        return table
    with _shared_tables_lock:
        table = _shared_tables.get(max_order)
        if table is None:
            table = PrecalcTable(max_order)
            _shared_tables[max_order] = table
            _metric_inc("steady_ant.precalc_builds", 1)
        else:  # pragma: no cover - lost the build race
            _metric_inc("steady_ant.precalc_hits", 1)
    return table


def _multiply(p: np.ndarray, q: np.ndarray, table: PrecalcTable) -> np.ndarray:
    n = p.size
    if n <= table.max_order:
        return table.multiply(p, q)
    h = n // 2
    p_lo, rows_lo, p_hi, rows_hi = split_p(p, h)
    q_lo, cols_lo, q_hi, cols_hi = split_q(q, h)
    r_lo_small = _multiply(p_lo, q_lo, table)
    r_hi_small = _multiply(p_hi, q_hi, table)
    return combine(rows_lo, cols_lo[r_lo_small], rows_hi, cols_hi[r_hi_small], n)


def steady_ant_precalc(
    p: PermArray, q: PermArray, *, max_order: int = DEFAULT_MAX_ORDER
) -> PermArray:
    """Sticky product ``p ⊙ q`` with the precalc base case."""
    p = np.ascontiguousarray(p, dtype=np.int64)
    q = np.ascontiguousarray(q, dtype=np.int64)
    if p.size != q.size:
        raise ShapeMismatchError(f"orders differ: {p.size} vs {q.size}")
    if p.size == 0:
        return p.copy()
    return _multiply(p, q, get_precalc_table(max_order))
