"""The ``Machine`` protocol: bulk-synchronous rounds of independent tasks.

The paper's parallel algorithms are bulk-synchronous: a sequence of
rounds, each a set of independent tasks followed by a barrier (the
``#pragma sync`` in Listings 4-7). A :class:`Machine` executes one round
and accounts its cost; algorithms parameterized over a machine can run
serially, on real processes, or on the deterministic simulator without
code changes.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

Thunk = Callable[[], Any]


@runtime_checkable
class Machine(Protocol):
    """Executes rounds of independent tasks and accounts elapsed time."""

    #: number of workers the machine models / uses
    workers: int

    def run_round(self, thunks: Sequence[Thunk]) -> list:
        """Execute all *thunks* (a parallel region + barrier); return
        their results in order."""
        ...

    def run_uniform_round(self, tasks: Sequence[tuple[Thunk, int]]) -> list:
        """Execute a round whose work consists of identical-cost *items*.

        Each task is ``(thunk, n_items)`` where the thunk processes all
        of its items in one (vectorized) batch. Because the items are
        interchangeable, a p-worker machine would split them evenly; the
        simulator accounts the round at ``T * ceil(N/p) / N`` for the
        measured batch time ``T`` and total item count ``N``. This models
        data-parallel inner loops (anti-diagonal cells, bit-parallel
        blocks) without paying NumPy dispatch overhead per chunk — the
        overhead a compiled OpenMP runtime does not have.
        """
        ...

    def run_serial(self, thunk: Thunk):
        """Execute a sequential section (counted at full cost)."""
        ...

    @property
    def elapsed(self) -> float:
        """Accounted running time in seconds."""
        ...

    def reset(self) -> None:
        """Zero the accounting."""
        ...


class SerialMachine:
    """Sequential execution; ``elapsed`` is plain wall-clock time.

    The cheapest Machine: every round runs the thunks in submission
    order on the calling thread. ``rounds`` / ``tasks`` are plain int
    attributes (one round per call, one task per thunk) — deliberately
    *not* live metrics, because algorithms such as the anti-diagonal
    wavefront submit one round per diagonal and the per-round cost must
    stay a couple of attribute increments.
    :func:`repro.obs.collect_machine` folds the final values into the
    ``machine.inproc_*`` gauges at run end. Not thread-safe: one
    SerialMachine belongs to one driving thread.
    """

    def __init__(self) -> None:
        self.workers = 1
        self._elapsed = 0.0
        self.rounds = 0
        self.tasks = 0

    def run_round(self, thunks: Sequence[Thunk]) -> list:
        """Run *thunks* sequentially; returns their results in order.

        Accumulates the wall-clock cost of the whole round into
        :attr:`elapsed` (seconds).
        """
        start = time.perf_counter()
        results = [t() for t in thunks]
        self._elapsed += time.perf_counter() - start
        self.rounds += 1
        self.tasks += len(thunks)
        return results

    def run_uniform_round(self, tasks: Sequence[tuple[Thunk, int]]) -> list:
        """Run a uniform round; serially the item counts are irrelevant."""
        return self.run_round([t for t, _ in tasks])

    def run_serial(self, thunk: Thunk):
        """Run one sequential section, accounted at full cost."""
        start = time.perf_counter()
        result = thunk()
        self._elapsed += time.perf_counter() - start
        return result

    @property
    def elapsed(self) -> float:
        """Accumulated wall-clock time of all rounds/sections, in seconds."""
        return self._elapsed

    def reset(self) -> None:
        """Zero ``elapsed``, ``rounds`` and ``tasks``."""
        self._elapsed = 0.0
        self.rounds = 0
        self.tasks = 0
