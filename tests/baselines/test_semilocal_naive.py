"""Tests for the brute-force semi-local oracle itself.

The oracle backs every kernel test, so it gets its own sanity checks
against first principles (direct DP on explicit padded windows).
"""

import numpy as np

from repro.baselines.lcs_dp import lcs_score_scalar
from repro.baselines.semilocal_naive import (
    WILDCARD,
    h_quadrants,
    lcs_with_wildcards,
    padded_b,
    semilocal_h_matrix_naive,
)

from ..conftest import random_pair


class TestWildcardLcs:
    def test_no_wildcards_is_plain_lcs(self, rng):
        a, b = random_pair(rng, max_len=10)
        assert lcs_with_wildcards(a, b) == lcs_score_scalar(a, b)

    def test_all_wildcards(self):
        a = np.array([1, 2, 3])
        w = np.full(5, WILDCARD)
        assert lcs_with_wildcards(a, w) == 3  # each wildcard matches once

    def test_leading_wildcards_formula(self, rng):
        """LCS(a, ?^k w) = k + LCS(a[k:], w) for k <= |a| (the identity the
        quadrant formulas rely on)."""
        for _ in range(20):
            a, b = random_pair(rng, max_len=8)
            for k in range(len(a) + 1):
                padded = np.concatenate([np.full(k, WILDCARD), b])
                assert lcs_with_wildcards(a, padded) == k + lcs_score_scalar(a[k:], b)


class TestPaddedB:
    def test_shape_and_content(self):
        a = np.array([1, 2])
        b = np.array([7, 8, 9])
        bp = padded_b(a, b)
        assert bp.size == 2 + 3 + 2
        assert (bp[:2] == WILDCARD).all() and (bp[-2:] == WILDCARD).all()
        assert bp[2:5].tolist() == [7, 8, 9]


class TestHMatrix:
    def test_definition_cases(self, rng):
        a, b = random_pair(rng, max_len=6)
        m, n = len(a), len(b)
        h = semilocal_h_matrix_naive(a, b)
        bp = padded_b(a, b)
        for i in range(m + n + 1):
            for j in range(m + n + 1):
                if i < j + m:
                    window = bp[i : j + m]
                    assert h[i, j] == lcs_with_wildcards(a, window), (i, j)
                else:
                    assert h[i, j] == j + m - i

    def test_center_is_global_lcs(self, rng):
        a, b = random_pair(rng, max_len=8)
        h = semilocal_h_matrix_naive(a, b)
        assert h[len(a), len(b)] == lcs_score_scalar(a, b)

    def test_quadrants_shapes(self, rng):
        a, b = random_pair(rng, max_len=6)
        m, n = len(a), len(b)
        h = semilocal_h_matrix_naive(a, b)
        q = h_quadrants(h, m, n)
        assert q["suffix-prefix"].shape == (m, n)
        assert q["substring-string"].shape == (m, m + 1)
        assert q["string-substring"].shape == (n + 1, n)
        assert q["prefix-suffix"].shape == (n + 1, m + 1)
