"""Range counting over permutation nonzeros (semi-local score queries).

A semi-local kernel answers score queries through dominance counts

    count(i, j) = #{ (s, e) nonzero : s >= i, e < j }.

The paper notes (§3, footnote 1) that storing the kernel instead of the
full score matrix H reduces memory from quadratic to linear while raising
the per-query cost from O(1) to polylogarithmic, citing range-counting
structures [5, 6, 13]. This module implements:

- :class:`DominanceCounter` — a merge-sort tree (Bentley-style
  multidimensional divide-and-conquer [5]): O(n log n) construction,
  O(log^2 n) per query, O(n log n) memory;
- :class:`WaveletCounter` — a wavelet matrix over the column values:
  O(n log n) construction, O(log n) per query;
- :class:`DenseCounter` — an explicit (n+1) x (n+1) prefix-count matrix:
  O(n^2) construction and memory, O(1) queries. Used for small kernels
  and as the oracle for the others.

All share the same two-method interface consumed by
:class:`repro.core.kernel.SemiLocalKernel`:

- ``count(i, j)`` — one scalar probe;
- ``count_many(i_arr, j_arr)`` — a *batched* probe carrying every query
  through the structure at once. For the wavelet matrix this is one
  vectorized level descent (O(log n) levels of O(k) NumPy work for k
  queries); for the merge-sort tree it is a batched canonical-block
  decomposition costing one ``np.searchsorted`` per level. Array-valued
  score queries (all-prefix, all-suffix, windowed LCS) reduce to one
  ``count_many`` call instead of k Python descents.

Pick explicitly with :func:`make_counter`'s ``kind`` argument (or the
``REPRO_COUNTER`` environment variable); the size-based default is the
dense table up to ``dense_threshold`` and the wavelet matrix beyond —
the merge-sort tree stays available for comparison
(``benchmarks/bench_ext_query_structures.py`` records why wavelet wins).

Built counters serialize (:func:`counter_to_bytes` /
:func:`counter_from_bytes`, versioned header) so a
:class:`~repro.checkpoint.store.KernelStore` can persist the *built*
levels alongside the kernel permutation and a disk cache hit skips the
O(n log n) counter construction, not just the comb.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..types import PermArray

__all__ = [
    "COUNTER_FORMAT",
    "COUNTER_KINDS",
    "DenseCounter",
    "DominanceCounter",
    "WaveletCounter",
    "counter_from_bytes",
    "counter_to_bytes",
    "make_counter",
    "resolve_counter_kind",
]

#: Environment variable overriding :func:`make_counter`'s size-based
#: default (one of :data:`COUNTER_KINDS`); an explicit ``kind=`` wins.
COUNTER_ENV = "REPRO_COUNTER"

#: Version tag of the :func:`counter_to_bytes` payload; bump to
#: invalidate every previously persisted counter.
COUNTER_FORMAT = 1

_COUNTER_MAGIC = b"RPCT"


def _as_query_arrays(i_arr, j_arr, n: int):
    """Broadcast, clamp to ``[0, n]`` and flatten one batch of queries;
    returns ``(i, j, shape)`` with ``shape`` the broadcast result shape."""
    i = np.asarray(i_arr, dtype=np.int64)
    j = np.asarray(j_arr, dtype=np.int64)
    i, j = np.broadcast_arrays(i, j)
    shape = i.shape
    i = np.clip(i.ravel(), 0, n)
    j = np.clip(j.ravel(), 0, n)
    return i, j, shape


class DenseCounter:
    """Explicit dominance-count matrix; O(1) queries, O(n^2) memory."""

    kind = "dense"

    def __init__(self, rows_to_cols: PermArray):
        p = np.asarray(rows_to_cols, dtype=np.int64)
        n = p.size
        self._n = n
        # table[i, j] = #{r >= i, p[r] < j}
        table = np.zeros((n + 1, n + 1), dtype=np.int64)
        if n:
            indicator = (p[:, None] < np.arange(n + 1)[None, :]).astype(np.int64)
            table[:n] = indicator[::-1].cumsum(axis=0)[::-1]
        self._table = table

    @property
    def n(self) -> int:
        return self._n

    def count(self, i: int, j: int) -> int:
        """#{(s, e) : s >= i, e < j}; arguments clamped to [0, n]."""
        n = self._n
        i = min(max(i, 0), n)
        j = min(max(j, 0), n)
        return int(self._table[i, j])

    def count_many(self, i_arr, j_arr) -> np.ndarray:
        """Vectorized batch of counts (clamped like :meth:`count`)."""
        i, j, shape = _as_query_arrays(i_arr, j_arr, self._n)
        return self._table[i, j].reshape(shape)


class DominanceCounter:
    """Merge-sort tree over the permutation's rows.

    Node ``v`` covers a contiguous row interval and stores the *sorted*
    column values of the nonzeros in those rows. A scalar query
    decomposes the row range ``[i, n)`` into O(log n) canonical nodes and
    binary-searches each sorted column list for ``< j``, giving
    O(log^2 n) per query with O(n log n) total memory — linear-memory
    semi-local LCS as promised by the paper.

    The tree is stored iteratively, bottom-up, as a list of levels; level
    arrays are built by pairwise NumPy merges so construction is
    O(n log n) with vectorized inner work. The top level is the fully
    sorted array (one block).

    :meth:`count_many` batches k queries with **one searchsorted per
    level**: ``count(i, j) = count([0, n), j) - count([0, i), j)`` and
    the prefix ``[0, i)`` decomposes into exactly one aligned canonical
    block per set bit of ``i``. Keying each level's values by their
    block index (``block * (n + 1) + value``) makes the whole level one
    globally sorted array, so all k block searches at a level collapse
    into a single vectorized ``np.searchsorted``.
    """

    kind = "merge-sort-tree"

    def __init__(self, rows_to_cols: PermArray):
        p = np.asarray(rows_to_cols, dtype=np.int64)
        self._n = int(p.size)
        # levels[0] = leaf values (size-1 blocks); levels[k] = sorted blocks
        # of size 2^k (last block possibly ragged).
        self._levels: list[np.ndarray] = []
        if self._n == 0:
            self._keyed: list[np.ndarray] = []
            return
        level = p.copy()
        self._levels.append(level)
        block = 1
        while block < self._n:
            prev = self._levels[-1]
            nxt = prev.copy()
            # merge adjacent sorted blocks of size `block` pairwise
            for start in range(0, self._n, 2 * block):
                mid = min(start + block, self._n)
                end = min(start + 2 * block, self._n)
                if mid < end:
                    merged = np.concatenate([prev[start:mid], prev[mid:end]])
                    merged.sort(kind="mergesort")
                    nxt[start:end] = merged
            self._levels.append(nxt)
            block *= 2
        self._build_keys()

    def _build_keys(self) -> None:
        """Per level, the block-keyed view ``block_idx * (n+1) + value``
        — globally sorted, which is what lets :meth:`count_many` answer
        every query's level-k block with one searchsorted. O(n) per
        level, recomputed (not persisted) on deserialization."""
        n = self._n
        pos = np.arange(n, dtype=np.int64)
        self._keyed = [
            (pos >> k) * (n + 1) + lvl for k, lvl in enumerate(self._levels)
        ]

    @property
    def n(self) -> int:
        return self._n

    def count(self, i: int, j: int) -> int:
        """#{(s, e) : s >= i, e < j} in O(log^2 n)."""
        n = self._n
        i = min(max(i, 0), n)
        j = min(max(j, 0), n)
        if i >= n or j <= 0:
            return 0
        total = 0
        # decompose [i, n) into canonical blocks, largest first
        pos = i
        while pos < n:
            # largest block size aligned at pos that fits in [pos, n)
            max_level = len(self._levels) - 1
            size = 1 << max_level
            while size > n - pos or pos % size != 0:
                size >>= 1
            level = size.bit_length() - 1
            block_arr = self._levels[level][pos : pos + size]
            total += int(np.searchsorted(block_arr, j, side="left"))
            pos += size
        return total

    def count_many(self, i_arr, j_arr) -> np.ndarray:
        """Batch of counts: one vectorized searchsorted per tree level."""
        i, j, shape = _as_query_arrays(i_arr, j_arr, self._n)
        n = self._n
        if n == 0 or i.size == 0:
            return np.zeros(shape, dtype=np.int64)
        # whole-range count from the fully sorted top level...
        total = np.searchsorted(self._levels[-1], j, side="left")
        # ...minus the prefix [0, i): one aligned block per set bit of i
        for k, keyed in enumerate(self._keyed):
            bit = ((i >> k) & 1).astype(bool)
            if not bit.any():
                continue
            start = (i >> (k + 1)) << (k + 1)  # block start, multiple of 2^k
            keys = (start >> k) * (n + 1) + j
            in_block = np.searchsorted(keyed, keys, side="left") - start
            total = total - np.where(bit, in_block, 0)
        return total.reshape(shape)


class WaveletCounter:
    """Wavelet *matrix* over the permutation's column values.

    The third flavour of range-counting structure the paper's footnote 1
    alludes to [5, 6, 13]. Each level partitions the whole sequence
    stably by one value bit (most significant first) and stores the
    prefix counts of 0-bits; a query ``#{s >= i, e < j}`` descends the
    levels once, mapping its position segment with two rank lookups per
    level — O(log n) per query (no binary searches, unlike the
    merge-sort tree's O(log^2 n)), O(n log n) words of storage.

    In a wavelet matrix (Claude-Navarro-Ordóñez layout) the partition is
    *global* rather than per-node, so position mapping uses global ranks
    plus the level's total count of 0-bits — which is what makes the
    NumPy construction three lines per level. The same globality makes
    :meth:`count_many` a *single* vectorized descent: all k queries ride
    the levels together as ``lo``/``hi`` vectors fancy-indexed into each
    level's ``prefix_zeros``, split on their own j-bit by ``np.where`` —
    O(log n) levels of O(k) NumPy work instead of k Python descents.
    """

    kind = "wavelet"

    def __init__(self, rows_to_cols: PermArray):
        p = np.asarray(rows_to_cols, dtype=np.int64)
        self._n = int(p.size)
        #: per level: (prefix counts of 0-bits, total 0-bits)
        self._levels: list[tuple[np.ndarray, int]] = []
        if self._n == 0:
            self._bits = 0
            return
        self._bits = max(1, int(self._n - 1).bit_length())
        seq = p
        for level in range(self._bits - 1, -1, -1):
            zero_bit = ((seq >> level) & 1) == 0
            prefix_zeros = np.concatenate([[0], np.cumsum(zero_bit)])
            self._levels.append((prefix_zeros, int(prefix_zeros[-1])))
            seq = np.concatenate([seq[zero_bit], seq[~zero_bit]])

    @property
    def n(self) -> int:
        return self._n

    def count(self, i: int, j: int) -> int:
        """#{(s, e) : s >= i, e < j} in O(log n)."""
        n = self._n
        i = min(max(i, 0), n)
        j = min(max(j, 0), n)
        if i >= n or j <= 0:
            return 0
        if j >= n:
            return n - i
        total = 0
        lo, hi = i, n
        for depth, (prefix_zeros, total_zeros) in enumerate(self._levels):
            if lo >= hi:
                break
            level = self._bits - 1 - depth
            zeros_lo = int(prefix_zeros[lo])
            zeros_hi = int(prefix_zeros[hi])
            if (j >> level) & 1:
                # all 0-bit elements in the segment have this bit < j's
                total += zeros_hi - zeros_lo
                lo = total_zeros + (lo - zeros_lo)
                hi = total_zeros + (hi - zeros_hi)
            else:
                lo = zeros_lo
                hi = zeros_hi
        return total

    def count_many(self, i_arr, j_arr) -> np.ndarray:
        """Batch of counts: one vectorized level descent for all queries.

        Queries whose segment empties (``lo == hi``) keep riding the
        descent as zero-width segments — every further level maps them to
        another zero-width segment and contributes 0, so no masking or
        early exit is needed for correctness.
        """
        i, j, shape = _as_query_arrays(i_arr, j_arr, self._n)
        n = self._n
        out = np.zeros(i.size, dtype=np.int64)
        if n == 0 or i.size == 0:
            return out.reshape(shape)
        full = j >= n  # e < n holds for every nonzero: closed form
        out[full] = n - i[full]
        active = ~full & (i < n) & (j > 0)
        if active.any():
            lo = i[active]
            hi = np.full(lo.size, n, dtype=np.int64)
            jj = j[active]
            total = np.zeros(lo.size, dtype=np.int64)
            for depth, (prefix_zeros, total_zeros) in enumerate(self._levels):
                level = self._bits - 1 - depth
                zeros_lo = prefix_zeros[lo]
                zeros_hi = prefix_zeros[hi]
                bit = ((jj >> level) & 1).astype(bool)
                total += np.where(bit, zeros_hi - zeros_lo, 0)
                lo = np.where(bit, total_zeros + (lo - zeros_lo), zeros_lo)
                hi = np.where(bit, total_zeros + (hi - zeros_hi), zeros_hi)
            out[active] = total
        return out.reshape(shape)


_COUNTERS = {
    "dense": DenseCounter,
    "merge-sort-tree": DominanceCounter,
    "wavelet": WaveletCounter,
}

#: The selectable counter kinds, in documentation order.
COUNTER_KINDS = tuple(_COUNTERS)


def resolve_counter_kind(size: int, *, dense_threshold: int = 2048, kind: str | None = None) -> str:
    """The counter kind :func:`make_counter` would build for a kernel of
    order *size*: an explicit *kind* wins, then the ``REPRO_COUNTER``
    environment variable, then the size-based default (dense up to
    *dense_threshold*, wavelet matrix beyond)."""
    if kind is None:
        kind = os.environ.get(COUNTER_ENV) or None
    if kind is not None:
        if kind not in _COUNTERS:
            raise KeyError(
                f"unknown counter kind {kind!r}; available: {sorted(_COUNTERS)}"
            )
        return kind
    return "dense" if size <= dense_threshold else "wavelet"


def make_counter(rows_to_cols: PermArray, *, dense_threshold: int = 2048, kind: str | None = None):
    """Pick a counter implementation by kernel size (or force one).

    ``kind`` in :data:`COUNTER_KINDS` overrides the size-based default
    (dense up to *dense_threshold*, wavelet matrix beyond — the
    merge-sort tree is opt-in); the ``REPRO_COUNTER`` environment
    variable overrides the default but not an explicit ``kind``.
    """
    p = np.asarray(rows_to_cols)
    return _COUNTERS[resolve_counter_kind(p.size, dense_threshold=dense_threshold, kind=kind)](p)


# -- persistence --------------------------------------------------------

_KIND_CODES = {"merge-sort-tree": 1, "wavelet": 2}
_CODE_KINDS = {v: k for k, v in _KIND_CODES.items()}
_HEADER = struct.Struct("<4sIIq")  # magic, format, kind code, n


def counter_to_bytes(counter) -> bytes | None:
    """Serialize a *built* counter's levels (versioned payload).

    Returns ``None`` for kinds not worth persisting — the dense table is
    O(n^2) bytes and one cumsum to rebuild, so only the O(n log n)
    structures (merge-sort tree, wavelet matrix) round-trip through the
    :class:`~repro.checkpoint.store.KernelStore`.
    """
    kind = getattr(counter, "kind", None)
    code = _KIND_CODES.get(kind)
    if code is None:
        return None
    parts = [_HEADER.pack(_COUNTER_MAGIC, COUNTER_FORMAT, code, counter.n)]
    if kind == "merge-sort-tree":
        levels = counter._levels
        parts.append(struct.pack("<I", len(levels)))
        for lvl in levels:
            parts.append(np.ascontiguousarray(lvl, dtype="<i8").tobytes())
    else:  # wavelet
        parts.append(struct.pack("<I", counter._bits))
        for prefix_zeros, _total in counter._levels:
            parts.append(np.ascontiguousarray(prefix_zeros, dtype="<i8").tobytes())
    return b"".join(parts)


def counter_from_bytes(data: bytes):
    """Rebuild a counter from :func:`counter_to_bytes` output without
    re-running the O(n log n) construction. Raises :class:`ValueError`
    on any malformed, truncated or version-mismatched payload (callers
    treat that as "no persisted counter" and rebuild)."""
    if len(data) < _HEADER.size:
        raise ValueError("counter payload truncated before header")
    magic, fmt, code, n = _HEADER.unpack_from(data, 0)
    if magic != _COUNTER_MAGIC:
        raise ValueError("counter payload has wrong magic")
    if fmt != COUNTER_FORMAT:
        raise ValueError(f"counter payload format {fmt} != {COUNTER_FORMAT}")
    kind = _CODE_KINDS.get(code)
    if kind is None or n < 0:
        raise ValueError(f"counter payload has invalid kind code {code} / n {n}")
    off = _HEADER.size
    (count,) = struct.unpack_from("<I", data, off)
    off += 4

    def take(words: int) -> np.ndarray:
        nonlocal off
        end = off + 8 * words
        if end > len(data):
            raise ValueError("counter payload truncated mid-level")
        arr = np.frombuffer(data, dtype="<i8", count=words, offset=off).astype(np.int64)
        off = end
        return arr

    if kind == "merge-sort-tree":
        expected = 1 if n <= 1 else 1 + (n - 1).bit_length()
        if n and count != expected:
            raise ValueError(f"merge-sort tree level count {count} != {expected}")
        counter = DominanceCounter.__new__(DominanceCounter)
        counter._n = n
        counter._levels = [take(n) for _ in range(count if n else 0)]
        counter._build_keys()
    else:
        expected = max(1, (n - 1).bit_length()) if n else 0
        if count != expected:
            raise ValueError(f"wavelet level count {count} != {expected}")
        counter = WaveletCounter.__new__(WaveletCounter)
        counter._n = n
        counter._bits = count
        counter._levels = [
            (pz, int(pz[-1])) for pz in (take(n + 1) for _ in range(count))
        ]
    if off != len(data):
        raise ValueError("counter payload has trailing bytes")
    return counter
