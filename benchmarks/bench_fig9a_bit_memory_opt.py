"""Fig. 9a: bit_old vs bit_new_1 (memory-access optimization).

Paper result: loading words once per w x w block instead of once per
cell anti-diagonal improves multithreaded running time by up to 4.5x at
16 threads (false-sharing elimination); single-threaded it also helps.
"""

import pytest

from repro.bench.figures import fig9a_bit_memory_optimization
from repro.bench.harness import scaled
from repro.core.bitparallel import bit_lcs
from repro.datasets.synthetic import binary_pair


@pytest.fixture(scope="module")
def pair():
    n = scaled(40_000)
    return binary_pair(n, n, seed=17)


@pytest.mark.parametrize("variant", ["old", "new1"])
def test_bit_variant(benchmark, variant, pair):
    a, b = pair
    benchmark.group = "fig9a bit-parallel memory optimization"
    benchmark.pedantic(bit_lcs, args=(a, b), kwargs={"variant": variant}, rounds=2, iterations=1)


def test_fig9a_table(benchmark, print_table):
    table = benchmark.pedantic(
        lambda: fig9a_bit_memory_optimization(threads=(1, 4, 8)), rounds=1, iterations=1
    )
    print_table(table)
    # new1 must beat old on average (paper's effect is larger on real
    # hardware via false-sharing, which the simulator cannot exhibit)
    speedups = [row[3] for row in table.rows]
    assert sum(speedups) / len(speedups) > 1.05, table.rows
