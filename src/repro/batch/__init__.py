"""repro.batch — many-pair throughput engine.

One semi-local LCS solve is latency-bound: a wavefront of tiny NumPy
operations whose per-anti-diagonal dispatch overhead dwarfs the useful
work at small and medium sizes. When the workload is *many pairs*
(all-pairs similarity matrices, approximate-matching sweeps, dataset
scoring), that overhead can be amortized across queries instead:

- :mod:`repro.batch.lockstep` combs B same-bucket grids in lockstep —
  strand arrays gain a lane axis and each anti-diagonal update serves
  all B pairs in one vectorized step (ragged lanes are padded under
  validity masks);
- :mod:`repro.batch.bitlockstep` does the same for the bit-parallel
  binary comber at word granularity;
- :mod:`repro.batch.scheduler` buckets pairs by padded shape, packs
  megabatches into reusable shared-memory slabs, and pipelines rounds
  through a machine (``submit`` round ``k + 1`` while ``k`` computes).

The public entry points below accept raw strings or code arrays and
return exactly what per-pair :func:`repro.semilocal_lcs` /
:func:`repro.lcs` / :func:`repro.bit_lcs` would — just faster per pair.
"""

from __future__ import annotations

import numpy as np

from .lockstep import BATCH_BLENDS, comb_lockstep, pack_lanes
from .bitlockstep import comb_bit_lockstep, pack_bit_lanes
from .scheduler import (
    LOCKSTEP_ALGORITHM,
    LOCKSTEP_KWARGS,
    BatchScheduler,
    lockstep_supported,
    run_bit_batches,
)

__all__ = [
    "batch_semilocal_lcs",
    "batch_lcs",
    "batch_bit_lcs",
    "BatchScheduler",
    "BATCH_BLENDS",
    "LOCKSTEP_ALGORITHM",
    "LOCKSTEP_KWARGS",
    "lockstep_supported",
    "comb_lockstep",
    "comb_bit_lockstep",
    "pack_lanes",
    "pack_bit_lanes",
    "run_bit_batches",
]


def batch_semilocal_lcs(
    pairs,
    algorithm: str = LOCKSTEP_ALGORITHM,
    *,
    machine=None,
    max_lanes: int = 64,
    min_side: int = 16,
    pipeline_depth: int = 2,
    **kwargs,
):
    """Solve semi-local LCS for many ``(a, b)`` pairs at once.

    Equivalent to ``[semilocal_lcs(a, b, algorithm, **kwargs) for a, b
    in pairs]`` but dispatched through the batch engine: lockstep
    vectorization across same-bucket pairs, shared-memory megabatches
    and pipelined rounds when *machine* is a process machine. Returns a
    list of :class:`~repro.core.kernel.SemiLocalKernel`.
    """
    from ..core.kernel import SemiLocalKernel

    sched = BatchScheduler(
        machine,
        algorithm=algorithm,
        max_lanes=max_lanes,
        min_side=min_side,
        pipeline_depth=pipeline_depth,
        **kwargs,
    )
    return [
        SemiLocalKernel(kern, m, n, validate=False)
        for kern, m, n in sched.run(pairs, want="kernels")
    ]


def batch_lcs(
    pairs,
    algorithm: str = LOCKSTEP_ALGORITHM,
    *,
    machine=None,
    max_lanes: int = 64,
    min_side: int = 16,
    pipeline_depth: int = 2,
    **kwargs,
) -> np.ndarray:
    """Plain LCS scores for many pairs (int64 array, input order).

    The score-only path skips kernel extraction entirely — each lane's
    score is read straight off the final vertical strands — so it is the
    fastest way to answer "how similar are all of these?".
    """
    sched = BatchScheduler(
        machine,
        algorithm=algorithm,
        max_lanes=max_lanes,
        min_side=min_side,
        pipeline_depth=pipeline_depth,
        **kwargs,
    )
    return np.asarray(sched.run(pairs, want="scores"), dtype=np.int64)


def batch_bit_lcs(
    pairs,
    *,
    machine=None,
    w: int = 64,
    max_lanes: int = 64,
    pipeline_depth: int = 2,
) -> np.ndarray:
    """Bit-parallel LCS scores for many *binary* pairs (int64 array).

    Accepts the same inputs as :func:`repro.bit_lcs` (binary strings or
    0/1 code arrays); lanes are padded to a common word count per
    megabatch so the whole batch combs as one stack of word operations.
    """
    from ..alphabet import encode, to_binary

    coded = [
        (
            to_binary(a) if isinstance(a, str) else encode(a),
            to_binary(b) if isinstance(b, str) else encode(b),
        )
        for a, b in pairs
    ]
    return run_bit_batches(
        coded, machine=machine, w=w, max_lanes=max_lanes, pipeline_depth=pipeline_depth
    )
