"""Unit tests for the explicit grid-reduction plan and round fusion (PR 8).

The plan is pure scheduling data; these tests pin down its invariants —
id layout, span coverage, dependency order — and that :func:`fuse_plan`
degenerates to the legacy one-round-per-level schedule at ``budget=0``
while honouring its payload budget and depth cap otherwise.
"""

import numpy as np

from repro.core.combing.hybrid import (
    DEFAULT_FUSE_BUDGET,
    MAX_FUSE_LEVELS,
    _split_lengths,
    fuse_plan,
    plan_grid_reduction,
)
from repro.core.combing.iterative import _antidiag_ranges, fused_antidiag_groups


def _plan(m, n, m_outer, n_outer):
    a_lens = _split_lengths(m, m_outer)
    b_lens = _split_lengths(n, n_outer)
    return plan_grid_reduction(m, n, a_lens, b_lens)


SHAPES = [(64, 64, 4, 4), (100, 40, 5, 2), (17, 90, 1, 6), (33, 7, 3, 1), (8, 8, 1, 1)]


class TestPlan:
    def test_root_spans_full_grid(self):
        for m, n, mo, no in SHAPES:
            levels, spans, root = _plan(m, n, mo, no)
            assert spans[root] == (0, m, 0, n), (m, n, mo, no)

    def test_leaf_count_and_ids(self):
        levels, spans, root = _plan(64, 64, 4, 4)
        # leaf ids are row-major 0..15; compose ids follow sequentially
        for i in range(4):
            for j in range(4):
                a_lo, a_hi, b_lo, b_hi = spans[i * 4 + j]
                assert (a_hi - a_lo) == 16 and (b_hi - b_lo) == 16
        assert min(op.out for ops in levels for op in ops) == 16

    def test_each_level_halves_one_axis(self):
        levels, spans, root = _plan(64, 64, 4, 4)
        # 4x4 grid: 16 -> 8 -> 4 -> 2 -> 1 nodes, four levels
        assert [len(ops) for ops in levels] == [8, 4, 2, 1]

    def test_ops_consume_existing_nodes_in_dependency_order(self):
        for m, n, mo, no in SHAPES:
            levels, spans, root = _plan(m, n, mo, no)
            known = {i * no + j for i in range(mo) for j in range(no)}
            for ops in levels:
                outs = set()
                for op in ops:
                    assert op.left in known and op.right in known
                    outs.add(op.out)
                known |= outs

    def test_compose_spans_union_their_children(self):
        for m, n, mo, no in SHAPES:
            levels, spans, root = _plan(m, n, mo, no)
            for ops in levels:
                for op in ops:
                    la = spans[op.left]
                    ra = spans[op.right]
                    out = spans[op.out]
                    if op.kind == "h":  # same rows, adjacent columns
                        assert la[:2] == ra[:2] == out[:2]
                        assert (la[2], ra[3]) == (out[2], out[3])
                        assert la[3] == ra[2]
                    else:  # same columns, adjacent rows
                        assert la[2:] == ra[2:] == out[2:]
                        assert (la[0], ra[1]) == (out[0], out[1])
                        assert la[1] == ra[0]

    def test_single_block_grid_has_no_levels(self):
        levels, spans, root = _plan(8, 8, 1, 1)
        assert levels == [] and root == 0


class TestFusePlan:
    def test_budget_zero_is_one_round_per_level(self):
        levels, spans, root = _plan(100, 40, 5, 2)
        rounds = fuse_plan(levels, spans, budget=0)
        assert len(rounds) == len(levels)
        for ops, tasks in zip(levels, rounds):
            assert sorted(op.out for t in tasks for op in t) == sorted(
                op.out for op in ops
            )
            assert all(len(t) == 1 for t in tasks)

    def test_max_levels_one_is_one_round_per_level(self):
        levels, spans, root = _plan(64, 64, 4, 4)
        rounds = fuse_plan(levels, spans, budget=1 << 60, max_levels=1)
        assert len(rounds) == len(levels)

    def test_huge_budget_fuses_to_depth_cap(self):
        levels, spans, root = _plan(64, 64, 4, 4)
        rounds = fuse_plan(levels, spans, budget=1 << 60)
        assert len(rounds) == -(-len(levels) // MAX_FUSE_LEVELS)
        # every op appears exactly once across all rounds
        got = sorted(op.out for rnd in rounds for t in rnd for op in t)
        assert got == sorted(op.out for ops in levels for op in ops)

    def test_fused_tasks_keep_dependency_order(self):
        levels, spans, root = _plan(64, 64, 4, 4)
        for rnd in fuse_plan(levels, spans, budget=1 << 60):
            for task in rnd:
                produced = set()
                for op in task:
                    # a fused op's inputs are external or already produced
                    for src in (op.left, op.right):
                        assert src not in {o.out for o in task} - produced
                    produced.add(op.out)

    def test_rounds_only_consume_earlier_rounds(self):
        levels, spans, root = _plan(100, 40, 5, 2)
        for budget in (0, 64, 4096, DEFAULT_FUSE_BUDGET, 1 << 60):
            rounds = fuse_plan(levels, spans, budget=budget)
            done = {i for i in spans if i < 10}  # the 5x2 leaves
            for rnd in rounds:
                outs = {op.out for t in rnd for op in t}
                for task in rnd:
                    internal = {op.out for op in task}
                    for op in task:
                        for src in (op.left, op.right):
                            assert src in done or src in internal
                done |= outs

    def test_fused_task_payload_within_budget(self):
        levels, spans, root = _plan(256, 256, 8, 8)
        itemsize = 8
        budget = 2048
        for rnd in fuse_plan(levels, spans, budget=budget, itemsize=itemsize):
            for task in rnd:
                if len(task) == 1:
                    continue  # singletons are always admissible
                outs = {op.out for op in task}
                ext = [s for op in task for s in (op.left, op.right) if s not in outs]
                payload = sum(
                    (spans[s][1] - spans[s][0] + spans[s][3] - spans[s][2]) * itemsize
                    for s in ext
                )
                assert payload <= budget


class TestWavefrontGroups:
    def test_groups_concatenate_to_ranges(self):
        for m, n in [(5, 9), (16, 16), (1, 7), (40, 3)]:
            want = list(_antidiag_ranges(m, n))
            for budget in (None, 1, 8, 10**9):
                got = [
                    rng
                    for grp in fused_antidiag_groups(m, n, budget)
                    for rng in grp
                ]
                assert got == want, (m, n, budget)

    def test_budget_bounds_group_cells(self):
        m, n = 16, 24
        budget = 3 * m
        for grp in fused_antidiag_groups(m, n, budget):
            cells = sum(r[0] for r in grp)
            assert cells <= budget or len(grp) == 1

    def test_huge_budget_is_one_group(self):
        groups = list(fused_antidiag_groups(12, 12, 10**9))
        assert len(groups) == 1
