"""Property-based tests for the parallel substrate and parallel algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combing.iterative import iterative_combing_rowmajor
from repro.core.combing.parallel import (
    parallel_hybrid_combing_grid,
    parallel_iterative_combing,
    parallel_load_balanced_combing,
)
from repro.parallel.simulator import SimulatedMachine

string_pairs = st.tuples(
    st.lists(st.integers(0, 2), min_size=1, max_size=12),
    st.lists(st.integers(0, 2), min_size=1, max_size=12),
)

durations = st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=24)


@given(durations, st.integers(1, 8))
@settings(max_examples=200, deadline=None)
def test_makespan_bounds(ds, workers):
    """Greedy schedules sit between the trivial lower bounds and the
    serial sum; with one worker they equal the sum exactly."""
    machine = SimulatedMachine(workers=workers)
    span = machine.makespan(ds)
    total = sum(ds)
    lower = max(max(ds), total / workers)
    assert lower - 1e-9 <= span <= total + 1e-9
    # list scheduling is a 2-approximation
    assert span <= 2 * lower + 1e-9


@given(durations)
@settings(max_examples=100, deadline=None)
def test_makespan_monotone_in_workers(ds):
    machine_small = SimulatedMachine(workers=2)
    machine_big = SimulatedMachine(workers=6)
    assert machine_big.makespan(ds) <= machine_small.makespan(ds) + 1e-9


@given(string_pairs, st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_parallel_combing_exact(pair, workers):
    a, b = pair
    want = iterative_combing_rowmajor(a, b)
    for fn in (
        parallel_iterative_combing,
        parallel_load_balanced_combing,
        parallel_hybrid_combing_grid,
    ):
        got = fn(a, b, SimulatedMachine(workers=workers))
        assert np.array_equal(got, want), fn.__name__


@given(st.integers(1, 100), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_uniform_round_busiest_worker_fraction(items, workers):
    """ceil(N/p)/N is within [1/p, 1] and decreases with p."""
    frac = (-(-items // workers)) / items
    assert 1 / workers - 1e-12 <= frac <= 1.0
