"""Tests for the precalc table (packed small-permutation products)."""

import numpy as np
import pytest
from itertools import permutations

from repro.core.dist_matrix import sticky_multiply_dense
from repro.core.steady_ant.precalc import (
    PrecalcTable,
    get_precalc_table,
    pack,
    steady_ant_precalc,
    unpack,
)


class TestPacking:
    def test_roundtrip(self):
        for perm in permutations(range(4)):
            assert unpack(pack(perm), 4).tolist() == list(perm)

    def test_paper_packing_format(self):
        """k-th tetrade holds the column of the nonzero in row k."""
        word = pack([2, 0, 1])
        assert (word >> 0) & 0xF == 2
        assert (word >> 4) & 0xF == 0
        assert (word >> 8) & 0xF == 1

    def test_max_order_8(self):
        p = list(range(8))[::-1]
        assert unpack(pack(p), 8).tolist() == p


class TestTable:
    def test_small_table_sizes(self):
        t = PrecalcTable(max_order=3)
        # 1!^2 + 2!^2 + 3!^2 = 1 + 4 + 36
        assert len(t) == 41

    def test_paper_table_size(self):
        t = get_precalc_table(5)
        # paper footnote 6: (5!)^2 = 14400 pairs at order 5
        assert len(t) == 1 + 4 + 36 + 576 + 14400

    def test_all_order3_products_correct(self):
        t = PrecalcTable(max_order=3)
        for p in permutations(range(3)):
            for q in permutations(range(3)):
                pa = np.asarray(p)
                qa = np.asarray(q)
                assert np.array_equal(t.multiply(pa, qa), sticky_multiply_dense(pa, qa))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            PrecalcTable(max_order=0)
        with pytest.raises(ValueError):
            PrecalcTable(max_order=9)

    def test_shared_table_cached(self):
        assert get_precalc_table(4) is get_precalc_table(4)


class TestWarmOnce:
    def test_builds_exactly_once_per_process(self, monkeypatch):
        from repro.core.steady_ant import precalc as mod
        from repro.obs import get_metrics

        monkeypatch.setattr(mod, "_shared_tables", {})
        metrics = get_metrics()
        builds0 = metrics.get("steady_ant.precalc_builds").value
        hits0 = metrics.get("steady_ant.precalc_hits").value
        first = get_precalc_table(5)
        for _ in range(4):
            assert get_precalc_table(5) is first
        assert metrics.get("steady_ant.precalc_builds").value - builds0 == 1
        assert metrics.get("steady_ant.precalc_hits").value - hits0 == 4

    def test_worker_cache_hits_collected_from_processes(self):
        """Pool workers serving many steady-ant tasks must warm the table
        once each and answer the rest from cache; the hit counter rides
        home in the round's metric delta."""
        from repro.obs import get_metrics
        from repro.parallel import ProcessMachine, run_array_round

        metrics = get_metrics()
        hits_before = metrics.get("steady_ant.precalc_hits").value
        rng = np.random.default_rng(3)
        specs = [
            (steady_ant_precalc, (rng.permutation(40), rng.permutation(40)), {})
            for _ in range(8)
        ]
        prev = metrics.remote_collection
        metrics.remote_collection = True
        try:
            with ProcessMachine(workers=2) as machine:
                results = run_array_round(machine, specs)
        finally:
            metrics.remote_collection = prev
        assert len(results) == 8
        # 8 tasks across <= 2 fresh workers: at least 6 lookups were
        # answered by an already-built table, merged back via the delta
        assert metrics.get("steady_ant.precalc_hits").value - hits_before >= 6


class TestPrecalcMultiply:
    def test_matches_dense_with_order4_table(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 30))
            p, q = rng.permutation(n), rng.permutation(n)
            got = steady_ant_precalc(p, q, max_order=4)
            assert np.array_equal(got, sticky_multiply_dense(p, q))

    def test_empty(self):
        assert steady_ant_precalc(np.array([], dtype=int), np.array([], dtype=int)).size == 0
