"""Query-tier benchmark: cold kernel build vs cached-query latency.

Measures, at each size (random 4-symbol strings):

- ``build_s`` — the cold path: one fresh :class:`repro.query.QueryEngine`
  combing the pair's semi-local kernel from scratch (what every query
  would cost without memoization);
- the cached per-op latency of every catalog query on the warm engine
  (``lcs``, ``windowed_lcs``, ``all_prefix_scores``,
  ``all_suffix_scores``, ``substring_threshold_matches``), plus the
  amortized per-dominance-count cost for the array-valued ops;
- ``append_s`` vs ``recomb_s`` — extending the pair by a short suffix via
  Theorem 3.4 composition against recombing ``a + suffix`` whole;
- ``store_hit_s`` — a second engine fetching the kernel from an on-disk
  :class:`~repro.checkpoint.store.KernelStore` instead of combing;
- the ``probes`` section — the batched-probe claim: the
  ``all_prefix_scores`` probe set (n + 1 dominance counts on one kernel)
  answered by one vectorized ``WaveletCounter.count_many`` descent vs a
  Python loop of scalar merge-sort-tree ``count`` calls, outputs
  verified against the brute-force DP table.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr9_query.py \
        --sizes 1024 4096 --out BENCH_query.json --check

``--check`` exits non-zero unless, at the largest size, a cached ``lcs``
query is >= 20x faster than the cold kernel build (the one-kernel /
many-queries claim), the Theorem 3.4 append beats the full recomb, and
the batched wavelet probe beats the scalar merge-tree loop by >= 10x
with DP-verified outputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common import add_quick_flag, apply_quick, commit_hash  # noqa: E402

GATE_X = 20.0  # cached lcs query must beat the cold build by this factor
PROBE_GATE_X = 10.0  # batched wavelet probe vs scalar merge-tree loop
PROBE_N = 8192  # string length of the batched-probe measurement


def _strings(n: int, seed: int = 2021):
    import numpy as np

    rng = np.random.default_rng(seed)
    return (
        "".join("ACGT"[i] for i in rng.integers(0, 4, n)),
        "".join("ACGT"[i] for i in rng.integers(0, 4, n)),
    )


def _best(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_size(n: int, repeats: int) -> dict:
    from repro.baselines.lcs_dp import lcs_score_dp
    from repro.checkpoint import KernelStore
    from repro.query import QueryEngine

    a, b = _strings(n)
    window = max(16, n // 16)

    # cold build: a fresh engine combs the kernel (measured once per
    # repeat on its own engine so every repetition is honestly cold)
    def cold():
        QueryEngine().lcs(a, b)

    build_s = _best(cold, repeats)

    warm = QueryEngine()
    verified = warm.lcs(a, b) == lcs_score_dp(a, b) if n <= 4096 else True
    ops = {
        "lcs": (lambda: warm.lcs(a, b), 1),
        "windowed_lcs": (lambda: warm.windowed_lcs(a, b, window), n - window + 1),
        "all_prefix_scores": (lambda: warm.all_prefix_scores(a, b), n + 1),
        "all_suffix_scores": (lambda: warm.all_suffix_scores(a, b), n + 1),
        "substring_threshold_matches": (
            lambda: warm.substring_threshold_matches(a, b, 0.5, window=window),
            n - window + 1,
        ),
    }
    cached = {}
    for name, (fn, counts) in ops.items():
        op_s = _best(fn, repeats)
        cached[name] = {
            "op_s": round(op_s, 6),
            "per_count_us": round(op_s / counts * 1e6, 3),
            "speedup_vs_build_x": round(build_s / op_s, 1),
        }

    # Theorem 3.4 append vs recombing the extended pair from scratch.
    # The base kernel is installed *outside* the timed region — the
    # query tier's whole premise is that it is already cached.
    suffix = a[: max(8, n // 64)]
    base_perm = warm.kernel(a, b).kernel
    append_times, recomb_times = [], []
    for _ in range(repeats):
        eng = QueryEngine()
        eng.install_kernel(a, b, base_perm)
        start = time.perf_counter()
        eng.append(a, suffix, b)
        append_times.append(time.perf_counter() - start)
        fresh = QueryEngine()
        start = time.perf_counter()
        fresh.kernel(a + suffix, b)
        recomb_times.append(time.perf_counter() - start)
    append_s = min(append_times)
    recomb_s = min(recomb_times)

    # disk-backed fetch: a second process-equivalent engine hits the store
    with tempfile.TemporaryDirectory() as root:
        seeded = QueryEngine(store=KernelStore(root))
        seeded.lcs(a, b)

        def store_hit():
            QueryEngine(store=KernelStore(root)).lcs(a, b)

        store_hit_s = _best(store_hit, repeats)

    return {
        "n": n,
        "window": window,
        "suffix_len": len(suffix),
        "verified": bool(verified),
        "build_s": round(build_s, 6),
        "cached": cached,
        "append_s": round(append_s, 6),
        "recomb_s": round(recomb_s, 6),
        "append_speedup_x": round(recomb_s / append_s, 2),
        "store_hit_s": round(store_hit_s, 6),
        "store_hit_speedup_x": round(build_s / store_hit_s, 1),
    }


def measure_probes(n: int, repeats: int) -> dict:
    """Batched vs scalar dominance probing on the ``all_prefix_scores``
    probe set: ``i = m`` fixed, ``j = 0..n`` — one ``count_many`` descent
    carrying all n + 1 queries against a Python loop of scalar
    merge-sort-tree descents, outputs checked against the DP table."""
    import numpy as np

    from repro.baselines.lcs_dp import lcs_table
    from repro.core.dominance import DominanceCounter, WaveletCounter
    from repro.query import QueryEngine

    a, b = _strings(n)
    kern = QueryEngine().kernel(a, b)
    m = kern.m
    tree = DominanceCounter(kern.kernel)
    wavelet = WaveletCounter(kern.kernel)
    js = np.arange(n + 1, dtype=np.int64)
    is_ = np.full_like(js, m)

    def scalar_loop():
        return [tree.count(m, int(j)) for j in js]

    def batched():
        return wavelet.count_many(is_, js)

    # all three probe paths must turn into the same DP-verified scores
    prefix_scores = (js + m - is_) - np.asarray(batched())
    dp_scores = lcs_table(a, b)[-1, :]
    verified = (
        np.array_equal(prefix_scores, dp_scores)
        and np.array_equal(np.asarray(batched()), np.asarray(scalar_loop()))
    )

    scalar_s = _best(scalar_loop, repeats)
    batched_s = _best(batched, repeats)
    tree_batched_s = _best(lambda: tree.count_many(is_, js), repeats)
    return {
        "n": n,
        "probes": int(js.size),
        "verified": bool(verified),
        "scalar_tree_loop_s": round(scalar_s, 6),
        "wavelet_count_many_s": round(batched_s, 6),
        "tree_count_many_s": round(tree_batched_s, 6),
        "wavelet_batched_speedup_x": round(scalar_s / batched_s, 1),
        "tree_batched_speedup_x": round(scalar_s / tree_batched_s, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[1024, 4096])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_query.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless cached lcs >= {GATE_X:.0f}x the cold build at the "
             "largest size, append beats the recomb, and the batched wavelet "
             f"probe beats the scalar merge-tree loop by >= {PROBE_GATE_X:.0f}x",
    )
    parser.add_argument(
        "--probe-n", type=int, default=PROBE_N,
        help=f"string length of the batched-probe section (default: {PROBE_N})",
    )
    add_quick_flag(parser, sizes=[1024], repeats=2, probe_n=2048)
    args = parser.parse_args(argv)
    apply_quick(args)

    runs = [measure_size(n, args.repeats) for n in args.sizes]
    probes = measure_probes(args.probe_n, args.repeats)
    for rec in runs:
        print(
            f"n={rec['n']:6d} build {rec['build_s'] * 1000:8.2f} ms | "
            f"cached lcs {rec['cached']['lcs']['op_s'] * 1e6:8.1f} us "
            f"({rec['cached']['lcs']['speedup_vs_build_x']}x) | "
            f"append {rec['append_speedup_x']}x recomb | "
            f"store hit {rec['store_hit_speedup_x']}x build"
        )
    print(
        f"probes n={probes['n']:6d} ({probes['probes']} counts): scalar tree loop "
        f"{probes['scalar_tree_loop_s'] * 1000:.2f} ms | wavelet count_many "
        f"{probes['wavelet_count_many_s'] * 1000:.2f} ms "
        f"({probes['wavelet_batched_speedup_x']}x) | tree count_many "
        f"{probes['tree_count_many_s'] * 1000:.2f} ms "
        f"({probes['tree_batched_speedup_x']}x)"
    )

    doc = {
        "schema": "repro-bench-query/1",
        "commit": commit_hash(),
        "gate_x": GATE_X,
        "probe_gate_x": PROBE_GATE_X,
        "probes": probes,
        "runs": runs,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        top = max(runs, key=lambda r: r["n"])
        failed = False
        if not all(r["verified"] for r in runs):
            print("CHECK FAILED: query result disagreed with the DP oracle")
            failed = True
        got = top["cached"]["lcs"]["speedup_vs_build_x"]
        if got < GATE_X:
            print(
                f"CHECK FAILED: n={top['n']} cached lcs {got}x < {GATE_X}x build"
            )
            failed = True
        if top["append_speedup_x"] < 1.0:
            print(
                f"CHECK FAILED: n={top['n']} append "
                f"{top['append_speedup_x']}x slower than recomb"
            )
            failed = True
        if not probes["verified"]:
            print("CHECK FAILED: batched probe outputs disagreed with the DP table")
            failed = True
        if probes["wavelet_batched_speedup_x"] < PROBE_GATE_X:
            print(
                f"CHECK FAILED: n={probes['n']} batched wavelet probe "
                f"{probes['wavelet_batched_speedup_x']}x < {PROBE_GATE_X}x "
                "scalar merge-tree loop"
            )
            failed = True
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
