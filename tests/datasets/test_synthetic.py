"""Tests for the synthetic string generators."""

import numpy as np

from repro.datasets.synthetic import (
    binary_pair,
    binary_string,
    expected_zero_fraction,
    synthetic_pair,
    synthetic_string,
)


class TestSynthetic:
    def test_deterministic_by_seed(self):
        a1 = synthetic_string(100, sigma=1.0, seed=5)
        a2 = synthetic_string(100, sigma=1.0, seed=5)
        assert np.array_equal(a1, a2)

    def test_pair_lengths(self):
        a, b = synthetic_pair(50, 70, seed=1)
        assert len(a) == 50 and len(b) == 70

    def test_pair_defaults_square(self):
        a, b = synthetic_pair(30, seed=2)
        assert len(a) == len(b) == 30

    def test_pair_independent(self):
        a, b = synthetic_pair(2000, sigma=4.0, seed=3)
        assert not np.array_equal(a, b)

    def test_sigma_zero_fraction(self):
        s = synthetic_string(100_000, sigma=1.0, seed=7)
        measured = (s == 0).mean()
        assert abs(measured - expected_zero_fraction(1.0)) < 0.01

    def test_expected_zero_fraction_paper_value(self):
        # paper: ~0.683 for sigma = 1
        assert abs(expected_zero_fraction(1.0) - 0.683) < 0.001


class TestBinary:
    def test_alphabet(self):
        s = binary_string(1000, seed=1)
        assert set(np.unique(s).tolist()) <= {0, 1}

    def test_bias(self):
        s = binary_string(100_000, p_one=0.9, seed=2)
        assert 0.88 < s.mean() < 0.92

    def test_pair(self):
        a, b = binary_pair(100, 200, seed=0)
        assert len(a) == 100 and len(b) == 200
        assert set(np.unique(np.concatenate([a, b])).tolist()) <= {0, 1}
