"""BatchScheduler planning and dispatch over real machines."""

import numpy as np
import pytest

import repro
from repro.batch import BatchScheduler, batch_lcs, batch_semilocal_lcs
from repro.batch.scheduler import _ceil_pow2, lockstep_supported
from repro.obs import get_metrics
from repro.parallel import ProcessMachine, make_machine, shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


def _pairs(rng, count=20, max_len=40):
    pairs = []
    for _ in range(count):
        m = int(rng.integers(0, max_len))
        n = int(rng.integers(0, max_len))
        pairs.append(
            (rng.integers(0, 4, m).astype(np.int64), rng.integers(0, 4, n).astype(np.int64))
        )
    return pairs


def _reference(pairs):
    return [repro.semilocal_lcs(a, b) for a, b in pairs]


def _assert_equal(kernels, reference):
    for got, ref in zip(kernels, reference):
        assert got.m == ref.m and got.n == ref.n
        assert np.array_equal(got.kernel, ref.kernel)


def test_ceil_pow2_floor():
    assert _ceil_pow2(1, 16) == 16
    assert _ceil_pow2(17, 16) == 32
    assert _ceil_pow2(64, 16) == 64
    assert _ceil_pow2(65, 16) == 128


def test_lockstep_supported_gate():
    assert lockstep_supported("semi_antidiag_simd", {})
    assert lockstep_supported("semi_antidiag_simd", {"blend": "arith"})
    assert not lockstep_supported("semi_antidiag_simd", {"dtype": np.int64})
    assert not lockstep_supported("semi_rowmajor", {})


def test_in_process_kernels_and_scores(rng):
    pairs = _pairs(rng)
    ref = _reference(pairs)
    _assert_equal(batch_semilocal_lcs(pairs), ref)
    scores = batch_lcs(pairs)
    assert list(scores) == [k.lcs_whole() for k in ref]


def test_empty_and_trivial_pairs(rng):
    pairs = [("", ""), ("", "ABC"), ("ABC", ""), ("A", "A")]
    ref = _reference(pairs)
    _assert_equal(batch_semilocal_lcs(pairs), ref)
    assert list(batch_lcs(pairs)) == [0, 0, 0, 1]


def test_orientation_flip_restored(rng):
    # m > n pairs comb transposed and must flip back losslessly
    pairs = [
        (rng.integers(0, 4, 30).astype(np.int64), rng.integers(0, 4, 7).astype(np.int64)),
        (rng.integers(0, 4, 7).astype(np.int64), rng.integers(0, 4, 30).astype(np.int64)),
    ]
    _assert_equal(batch_semilocal_lcs(pairs), _reference(pairs))


def test_max_lanes_splits_megabatches(rng):
    pairs = [
        (rng.integers(0, 4, 12).astype(np.int64), rng.integers(0, 4, 12).astype(np.int64))
        for _ in range(10)
    ]
    before = get_metrics().get("batch.megabatches").value
    sched = BatchScheduler(None, max_lanes=3)
    sched.run(pairs, want="scores")
    added = get_metrics().get("batch.megabatches").value - before
    assert added == 4  # ceil(10 / 3) megabatches in the one shared bucket


def test_fallback_algorithms_match(rng):
    pairs = _pairs(rng, count=8, max_len=16)
    ref = _reference(pairs)
    for algorithm in ("semi_rowmajor", "semi_recursive"):
        _assert_equal(batch_semilocal_lcs(pairs, algorithm=algorithm), ref)
    before = get_metrics().get("batch.fallback_pairs").value
    batch_lcs(pairs, algorithm="semi_rowmajor")
    assert get_metrics().get("batch.fallback_pairs").value - before == len(
        [p for p in pairs if p[0].size and p[1].size]
    )


def test_unsupported_kwargs_force_fallback(rng):
    pairs = _pairs(rng, count=4, max_len=10)
    ref = _reference(pairs)
    # dtype kwarg is not lockstep-compatible; must still be correct
    _assert_equal(
        batch_semilocal_lcs(pairs, algorithm="semi_antidiag_simd", dtype=np.int64), ref
    )


@needs_shm
def test_process_machine_shm_round_trip(rng):
    pairs = _pairs(rng, count=25)
    ref = _reference(pairs)
    with ProcessMachine(workers=2, transport="shm") as machine:
        _assert_equal(batch_semilocal_lcs(pairs, machine=machine), ref)
        scores = batch_lcs(pairs, machine=machine)
        assert list(scores) == [k.lcs_whole() for k in ref]


@needs_shm
def test_slab_pool_reused_across_batches(rng):
    pairs = [
        (rng.integers(0, 4, 20).astype(np.int64), rng.integers(0, 4, 20).astype(np.int64))
        for _ in range(6)
    ]
    with ProcessMachine(workers=2, transport="shm") as machine:
        batch_lcs(pairs, machine=machine)
        first = machine.transport_stats()["arena"]
        assert first["slabs_free"] > 0 and first["slabs_used"] == 0
        before_allocs = get_metrics().get("transport.slab_allocs").value
        batch_lcs(pairs, machine=machine)
        second = machine.transport_stats()["arena"]
        # steady state: same segments recycled, nothing newly allocated
        assert second["segments"] == first["segments"]
        assert get_metrics().get("transport.slab_allocs").value == before_allocs
        reuses = get_metrics().get("transport.slab_reuses").value
        assert reuses > 0


def test_fallback_over_machine(rng):
    pairs = _pairs(rng, count=6, max_len=12)
    ref = _reference(pairs)
    machine = make_machine("processes", workers=2)
    try:
        _assert_equal(
            batch_semilocal_lcs(pairs, algorithm="semi_rowmajor", machine=machine), ref
        )
    finally:
        machine.close()


def test_serial_machine_supported(rng):
    pairs = _pairs(rng, count=6)
    machine = make_machine("serial")
    _assert_equal(batch_semilocal_lcs(pairs, machine=machine), _reference(pairs))


def test_invalid_want_and_lanes():
    with pytest.raises(ValueError, match="want"):
        BatchScheduler(None).run([("A", "B")], want="nope")
    with pytest.raises(ValueError, match="max_lanes"):
        BatchScheduler(None, max_lanes=0)


def test_metrics_accumulate(rng):
    pairs = _pairs(rng, count=5, max_len=10)
    metrics = get_metrics()
    before = {
        name: metrics.get(name).value
        for name in ("batch.pairs", "batch.megabatches", "batch.real_cells")
    }
    batch_lcs(pairs)
    assert metrics.get("batch.pairs").value - before["batch.pairs"] == len(pairs)
    assert metrics.get("batch.megabatches").value >= before["batch.megabatches"]
    real = sum(a.size * b.size for a, b in pairs)
    assert metrics.get("batch.real_cells").value - before["batch.real_cells"] == real
