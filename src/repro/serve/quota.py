"""Per-client token-bucket admission quotas.

The daemon meters *scoring* requests per client (quota key = the
request's ``client`` field, falling back to the connection's peer
address): each client owns a :class:`TokenBucket` of ``burst`` capacity
refilled at ``rate`` tokens/second. An empty bucket means the request is
answered immediately with the structured ``quota_exhausted`` error — a
misbehaving client cannot crowd the admission queue and starve the
others, which is the point of metering *before* the queue.

Buckets are created lazily and evicted once idle long enough to be full
again, so the table stays bounded under client churn.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["TokenBucket", "QuotaTable"]


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate`` tokens/second.

    ``rate <= 0`` disables metering (every acquire succeeds). The clock
    is injectable for deterministic tests. Thread-safe.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if burst <= 0:
            raise ValueError("burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self.rate > 0 and now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; ``False`` means over quota."""
        if self.rate <= 0:
            return True
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token count (after refilling to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class QuotaTable:
    """Lazily-created buckets keyed by client id, with idle eviction.

    ``rate <= 0`` disables quotas entirely (:meth:`admit` always
    ``True`` and no buckets are kept).
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 16.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether quotas are metered at all."""
        return self.rate > 0

    def admit(self, client: str, n: float = 1.0) -> bool:
        """Meter *n* tokens against *client*'s bucket."""
        if not self.enabled:
            return True
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
        return bucket.try_acquire(n)

    def evict_idle(self) -> int:
        """Drop buckets that have refilled to capacity (idle clients);
        returns how many were evicted. Cheap enough to run per flush."""
        if not self.enabled:
            return 0
        with self._lock:
            idle = [k for k, b in self._buckets.items() if b.tokens >= b.burst]
            for k in idle:
                del self._buckets[k]
            return len(idle)

    def __len__(self) -> int:
        return len(self._buckets)
