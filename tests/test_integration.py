"""Cross-module integration tests: datasets -> algorithms -> apps.

Each test exercises a realistic end-to-end pipeline rather than a single
module, with agreement checks between independent engines at every step.
"""

import numpy as np
import pytest

import repro
from repro.apps.approximate_matching import find_matches, sliding_window_scores
from repro.apps.edit_distance import indel_distance
from repro.apps.genome_similarity import similarity_matrix, upgma_newick
from repro.baselines.bit_hyyro import bit_lcs_hyyro
from repro.baselines.prefix_lcs import prefix_lcs_rowmajor
from repro.core.bitparallel import bit_lcs
from repro.core.combing.parallel import parallel_hybrid_combing_grid
from repro.core.kernel import SemiLocalKernel
from repro.datasets.genomes import GenomeSimulator, virus_pair
from repro.datasets.synthetic import binary_pair, synthetic_pair
from repro.parallel import SimulatedMachine


class TestSyntheticPipeline:
    def test_all_engines_agree_on_synthetic_pair(self):
        a, b = synthetic_pair(300, 400, sigma=1.0, seed=0)
        score = prefix_lcs_rowmajor(a, b)
        assert repro.lcs_score_dp(a, b) == score
        assert bit_lcs_hyyro(a, b) == score
        k = repro.semilocal_lcs(a, b)
        assert k.lcs_whole() == score
        k2 = repro.semilocal_lcs(a, b, algorithm="semi_hybrid_iterative")
        assert np.array_equal(k.kernel, k2.kernel)

    def test_binary_pipeline(self):
        a, b = binary_pair(700, 900, seed=1)
        score = bit_lcs(a, b)
        assert score == prefix_lcs_rowmajor(a, b)
        assert score == bit_lcs_hyyro(a, b)
        assert score == repro.semilocal_lcs(a, b).lcs_whole()

    def test_parallel_machine_pipeline(self):
        a, b = synthetic_pair(250, 330, sigma=0.5, seed=2)
        machine = SimulatedMachine(workers=4)
        kernel = parallel_hybrid_combing_grid(a, b, machine)
        k = SemiLocalKernel(kernel, len(a), len(b))
        assert k.lcs_whole() == prefix_lcs_rowmajor(a, b)
        assert machine.elapsed > 0 and machine.rounds >= 2


class TestGenomePipeline:
    def test_strain_similarity_and_matching(self):
        a, b = virus_pair("phage-ms2", seed=4, generations=2)
        # distance sanity between related strains
        assert indel_distance(a, b) < 0.3 * max(len(a), len(b))
        # a conserved segment of a is findable in b
        segment = a[500:620]
        scores = sliding_window_scores(segment, b)
        assert scores.max() >= 0.75 * len(segment)

    def test_family_tree(self):
        sim = GenomeSimulator(seed=5)
        fam1 = sim.strains(600, 2, generations=1)
        fam2 = sim.strains(600, 2, generations=1)
        labels = ["f1a", "f1b", "f2a", "f2b"]
        tree = upgma_newick(similarity_matrix(fam1 + fam2), labels)
        # siblings must be grouped: f1a with f1b, f2a with f2b
        inner = tree[1:-2]  # strip outer parens + ';'
        first_group = inner.split(")")[0]
        assert ("f1a" in first_group) == ("f1b" in first_group)


class TestMatchingConsistency:
    def test_find_matches_consistent_with_kernel_queries(self):
        rng = np.random.default_rng(6)
        pattern = rng.integers(0, 4, size=12).tolist()
        text = rng.integers(0, 4, size=200).tolist()
        text[40:52] = pattern
        text[120:132] = pattern
        matches = find_matches(pattern, text, min_score=12)
        starts = sorted(m.start for m in matches)
        assert starts == [40, 120]
        k = repro.semilocal_lcs(pattern, text)
        for m in matches:
            assert k.string_substring(m.start, m.end) == 12

    def test_window_scores_lipschitz(self):
        """Adjacent windows differ by at most 1 in score (a semi-local
        structure property: sliding the window moves one char in/out)."""
        a, b = synthetic_pair(30, 300, sigma=1.0, seed=7)
        scores = sliding_window_scores(a, b)
        assert (np.abs(np.diff(scores)) <= 1).all()


class TestEndToEndCli:
    def test_cli_pipeline(self, tmp_path, capsys):
        from repro.cli import main

        fasta = tmp_path / "s.fasta"
        assert main(["genomes", "--preset", "phage-ms2", "--count", "2", "--output", str(fasta)]) == 0
        from repro.alphabet import encode_dna
        from repro.datasets.fasta import read_fasta

        records = list(read_fasta(fasta))
        assert len(records) == 2
        g1 = encode_dna(records[0][1])
        g2 = encode_dna(records[1][1])
        k = SemiLocalKernel.from_strings(g1[:400], g2[:500])
        assert k.lcs_whole() == prefix_lcs_rowmajor(g1[:400], g2[:500])
