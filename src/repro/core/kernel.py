"""Semi-local LCS kernels and score queries.

A :class:`SemiLocalKernel` wraps the kernel permutation ``P_{a,b}``
produced by any combing algorithm and answers every semi-local score
query of Definition 3.2:

- string-substring: ``LCS(a, b[l:r))`` for any substring of ``b``,
- substring-string: ``LCS(a[l:r), b)``,
- prefix-suffix: ``LCS(a[:l), b[r:])``,
- suffix-prefix: ``LCS(a[l:), b[:r))``,

plus reconstruction of the full score matrix ``H_{a,b}`` of
Definition 3.3.

Conventions (verified against the brute-force DP of Definition 3.3 in
``tests/core/test_kernel.py``):

- the kernel maps strand *start positions* (left edge bottom-up
  ``0..m-1``, then top edge left-to-right ``m..m+n-1``) to *end positions*
  (bottom edge left-to-right ``0..n-1``, then right edge bottom-up
  ``n..n+m-1``);
- the score matrix is recovered by lower-left dominance counting::

      H[i, j] = (j + m - i) - #{ (s, e) in P : s >= i, e < j }

  evaluated in O(1) from a dense prefix table for small kernels, or in
  O(log n) from a wavelet matrix for large ones (linear memory, as
  promised in §3 of the paper; ``counter_kind`` selects the structure
  explicitly — see :mod:`repro.core.dominance`). Array-valued queries
  (whole rows of scores, windowed sweeps) go through the counter's
  batched ``count_many`` — one vectorized probe carrying every index
  pair at once instead of a Python loop of descents;
- wildcard windows reduce to plain LCS scores by the exchange argument:
  ``LCS(a, ?^k w) = k + LCS(a[k:], w)`` and symmetrically for trailing
  wildcards, which yields the four quadrant formulas below.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError, ShapeMismatchError
from ..obs.metrics import inc as _metric_inc
from ..types import PermArray, Sequenceish
from .dominance import make_counter, resolve_counter_kind
from .permutation import validate_permutation


class SemiLocalKernel:
    """Implicit semi-local score matrix, stored as a kernel permutation.

    Parameters
    ----------
    kernel:
        Permutation of ``[0, m+n)`` mapping strand starts to ends.
    m, n:
        Lengths of the input strings ``a`` and ``b``.
    dense_threshold:
        Kernels of order up to this use the O(n^2)-memory dense counter
        (O(1) queries); larger kernels use the wavelet matrix
        (O(n log n) memory, O(log n) queries, vectorized batch probes).
    counter_kind:
        Force a counting structure (one of
        :data:`repro.core.dominance.COUNTER_KINDS`) instead of the
        size-based default; the ``REPRO_COUNTER`` environment variable
        overrides the default but not an explicit kind.
    counter:
        A pre-built counter to adopt (e.g. deserialized from a
        :class:`~repro.checkpoint.store.KernelStore` artifact via
        :func:`repro.core.dominance.counter_from_bytes`). Adopted only
        when its order and kind match what would be built here;
        otherwise it is ignored and a fresh counter is constructed.
    """

    def __init__(
        self,
        kernel: PermArray,
        m: int,
        n: int,
        *,
        validate: bool = True,
        dense_threshold: int = 2048,
        counter_kind: str | None = None,
        counter=None,
    ):
        kernel = np.asarray(kernel, dtype=np.int64)
        if kernel.size != m + n:
            raise ShapeMismatchError(f"kernel order {kernel.size} != m + n = {m + n}")
        if validate:
            validate_permutation(kernel)
        self.kernel = kernel
        self.m = int(m)
        self.n = int(n)
        self._dense_threshold = dense_threshold
        self.counter_kind = resolve_counter_kind(
            kernel.size, dense_threshold=dense_threshold, kind=counter_kind
        )
        if (
            counter is not None
            and getattr(counter, "kind", None) == self.counter_kind
            and counter.n == kernel.size
        ):
            self._counter = counter
        else:
            self._counter = make_counter(
                kernel, dense_threshold=dense_threshold, kind=self.counter_kind
            )
            _metric_inc("kernel.counter_builds", 1)
        self._flipped_cache: "SemiLocalKernel | None" = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_strings(
        cls, a: Sequenceish, b: Sequenceish, algorithm=None, **kwargs
    ) -> "SemiLocalKernel":
        """Comb ``a`` against ``b`` and wrap the result.

        *algorithm* is any callable ``(a, b, **kwargs) -> kernel``;
        defaults to the vectorized anti-diagonal iterative combing.
        """
        from ..alphabet import encode
        from .combing.iterative import iterative_combing_antidiag_simd

        ca, cb = encode(a), encode(b)
        if algorithm is None:
            algorithm = iterative_combing_antidiag_simd
        return cls(algorithm(ca, cb, **kwargs), ca.size, cb.size, validate=False)

    # -- raw score matrix ----------------------------------------------

    def h(self, i: int, j: int) -> int:
        """Score-matrix entry ``H[i, j]`` of Definition 3.3.

        ``i, j`` range over ``[0, m+n]``; ``H[i, j] = LCS(a, b_pad[i:j+m))``
        for ``i < j + m`` and ``j + m - i`` otherwise.
        """
        size = self.m + self.n
        if not (0 <= i <= size and 0 <= j <= size):
            raise QueryError(f"H indices ({i}, {j}) outside [0, {size}]")
        return (j + self.m - i) - self._counter.count(i, j)

    def h_matrix(self) -> np.ndarray:
        """Materialize the full ``(m+n+1) x (m+n+1)`` score matrix H.

        O((m+n)^2) memory — intended for inspection and testing.
        """
        size = self.m + self.n
        grid = np.arange(size + 1)
        s = np.arange(size)[:, None]
        contrib = (s >= grid[None, :]).astype(np.int64)  # (size, size+1)
        lt = (self.kernel[:, None] < grid[None, :]).astype(np.int64)
        counts = contrib.T @ lt  # counts[i, j] = #{s >= i, e < j}
        base = (grid[None, :] + self.m) - grid[:, None]
        return base - counts

    # -- the four semi-local quadrants ----------------------------------

    def lcs_whole(self) -> int:
        """``LCS(a, b)`` — the classical global score."""
        return self.string_substring(0, self.n)

    def string_substring(self, l: int, r: int) -> int:
        """``LCS(a, b[l:r))`` for ``0 <= l <= r <= n``."""
        if not (0 <= l <= r <= self.n):
            raise QueryError(f"invalid substring of b: [{l}, {r})")
        # window b_pad[i : j+m) = b[l : r) at i = m + l, j = r.
        return self.h(self.m + l, r)

    def substring_string(self, l: int, r: int) -> int:
        """``LCS(a[l:r), b)`` for ``0 <= l <= r <= m``.

        Window starting and ending inside the wildcard paddings:
        ``i = m - l`` (leading wildcards consume ``a[:l)``) and
        ``j = n + m - r`` (trailing wildcards consume ``a[r:)``).
        """
        if not (0 <= l <= r <= self.m):
            raise QueryError(f"invalid substring of a: [{l}, {r})")
        return self.h(self.m - l, self.n + self.m - r) - l - (self.m - r)

    def prefix_suffix(self, l: int, r: int) -> int:
        """``LCS(a[:l), b[r:])`` for ``0 <= l <= m``, ``0 <= r <= n``."""
        if not (0 <= l <= self.m and 0 <= r <= self.n):
            raise QueryError(f"invalid prefix/suffix query ({l}, {r})")
        # i = m + r drops b[:r); j = n + m - l keeps m - l trailing
        # wildcards, which consume the suffix a[l:).
        return self.h(self.m + r, self.n + self.m - l) - (self.m - l)

    def suffix_prefix(self, l: int, r: int) -> int:
        """``LCS(a[l:), b[:r))`` for ``0 <= l <= m``, ``0 <= r <= n``."""
        if not (0 <= l <= self.m and 0 <= r <= self.n):
            raise QueryError(f"invalid suffix/prefix query ({l}, {r})")
        # i = m - l keeps l leading wildcards consuming a[:l); j = r.
        return self.h(self.m - l, r) - l

    # -- batch views -----------------------------------------------------

    def _count_many(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """One batched dominance probe, with batch accounting
        (``kernel.probe_batches`` / ``kernel.probes``); the scalar
        :meth:`h` path stays registry-free per the metrics contract."""
        _metric_inc("kernel.probe_batches", 1)
        _metric_inc("kernel.probes", int(i.size))
        return self._counter.count_many(i, j)

    def string_substring_many(self, ls, rs) -> np.ndarray:
        """Batch of ``LCS(a, b[l:r))`` scores for paired arrays of window
        bounds — one vectorized ``count_many`` probe for the whole batch."""
        ls = np.asarray(ls, dtype=np.int64)
        rs = np.asarray(rs, dtype=np.int64)
        if ls.shape != rs.shape:
            raise ShapeMismatchError("window bound arrays must have equal shape")
        if ls.size and (
            (ls < 0).any() or (rs > self.n).any() or (ls > rs).any()
        ):
            raise QueryError("invalid substring windows in batch query")
        i = self.m + ls
        j = rs
        return (j + self.m - i) - self._count_many(i, j)

    def string_substring_row(self, r: int) -> np.ndarray:
        """``out[l] = LCS(a, b[l:r))`` for all ``l in [0, r]`` (one array,
        one batched probe)."""
        if not (0 <= r <= self.n):
            raise QueryError(f"invalid substring end {r}")
        ls = np.arange(r + 1, dtype=np.int64)
        return self.string_substring_many(ls, np.full_like(ls, r))

    def all_string_substring(self) -> np.ndarray:
        """Matrix ``S[l, r] = LCS(a, b[l:r))`` for all ``l <= r``; 0 elsewhere.

        O(n^2) output, answered as a single batched probe over the full
        ``(l, r)`` grid — for moderate n.
        """
        grid = np.arange(self.n + 1, dtype=np.int64)
        i = self.m + grid[:, None]  # (n+1, 1): rows are l
        j = np.broadcast_to(grid[None, :], (self.n + 1, self.n + 1))  # cols are r
        scores = (j + self.m - i) - self._count_many(
            np.broadcast_to(i, j.shape), j
        )
        return np.where(grid[:, None] <= grid[None, :], scores, 0)

    def export_counter(self) -> bytes | None:
        """The built counter's serialized levels
        (:func:`repro.core.dominance.counter_to_bytes`), or ``None`` for
        kinds that are cheaper to rebuild than to persist (dense)."""
        from .dominance import counter_to_bytes

        return counter_to_bytes(self._counter)

    def flipped(self) -> "SemiLocalKernel":
        """Kernel of the swapped pair ``(b, a)`` via Theorem 3.5:
        ``P_{b,a}`` is the 180° rotation of ``P_{a,b}``. Cached."""
        if self._flipped_cache is None:
            size = self.m + self.n
            rotated = (size - 1 - self.kernel)[::-1].copy()
            self._flipped_cache = SemiLocalKernel(
                rotated,
                self.n,
                self.m,
                validate=False,
                dense_threshold=self._dense_threshold,
                counter_kind=self.counter_kind,
            )
        return self._flipped_cache

    def __repr__(self) -> str:
        return f"SemiLocalKernel(m={self.m}, n={self.n})"
