"""Tests for the checkpoint-facing CLI surface."""

import pytest

from repro.cli import main

A, B = "BAABCBCA", "BAABCABCABACA"


def run_semilocal(tmp_path, *extra):
    return main(
        ["semilocal", A, B, "--algorithm", "semi_hybrid_iterative",
         "--checkpoint-dir", str(tmp_path / "store"), *extra]
    )


class TestSemilocalCheckpoint:
    def test_checkpointed_run(self, tmp_path, capsys):
        assert run_semilocal(tmp_path) == 0
        out = capsys.readouterr().out
        assert "LCS(a, b) = 8" in out
        assert "checkpoint: hits=0" in out

    def test_resume_is_one_hit(self, tmp_path, capsys):
        assert run_semilocal(tmp_path) == 0
        capsys.readouterr()
        assert run_semilocal(tmp_path, "--resume") == 0
        out = capsys.readouterr().out
        assert "LCS(a, b) = 8" in out
        assert "checkpoint: hits=1, misses=0" in out

    def test_requires_grid_algorithm(self, tmp_path, capsys):
        assert main(
            ["semilocal", A, B, "--algorithm", "semi_rowmajor",
             "--checkpoint-dir", str(tmp_path / "store")]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestParallelCheckpoint:
    def test_checkpointed_run(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["parallel", A, B, "--checkpoint-dir", store]) == 0
        capsys.readouterr()
        assert main(["parallel", A, B, "--checkpoint-dir", store, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "LCS(a, b) = 8" in out
        assert "checkpoint: hits=1, misses=0" in out

    def test_requires_hybrid_algorithm(self, tmp_path, capsys):
        assert main(
            ["parallel", A, B, "--algorithm", "combing",
             "--checkpoint-dir", str(tmp_path / "store")]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_chaos_abort_after_crashes(self, tmp_path):
        from repro.parallel import ChaosProcessDeath

        with pytest.raises(ChaosProcessDeath):
            main(
                ["parallel", A * 4, B * 4, "--checkpoint-dir",
                 str(tmp_path / "store"), "--chaos-abort-after", "2"]
            )
        # the two completed tasks were persisted before the "death"
        assert main(["checkpoint", "list", str(tmp_path / "store")]) == 0


class TestCheckpointSubcommand:
    def test_list_verify_gc(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        run_semilocal(tmp_path)
        capsys.readouterr()
        assert main(["checkpoint", "list", store]) == 0
        out = capsys.readouterr().out
        assert "artifact(s)" in out and "algo=semi_hybrid_iterative" in out
        assert main(["checkpoint", "verify", store]) == 0
        assert "0 bad" in capsys.readouterr().out
        assert main(["checkpoint", "gc", store, "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out

    def test_verify_flags_corruption(self, tmp_path, capsys):
        from repro.checkpoint import KernelStore

        run_semilocal(tmp_path)
        store = KernelStore(tmp_path / "store")
        key = next(iter(store.keys()))
        payload = store._payload_path(key)
        payload.write_bytes(b"\x00" + payload.read_bytes()[1:])
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(tmp_path / "store")]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert main(["checkpoint", "gc", str(tmp_path / "store")]) == 0
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(tmp_path / "store")]) == 0

    def test_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["checkpoint", "list", str(tmp_path / "nope")]) == 2
        assert "no checkpoint store" in capsys.readouterr().err


class TestMainErrorHandling:
    def test_file_not_found_exits_2(self, tmp_path, capsys):
        assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-lcs: error:")

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out
