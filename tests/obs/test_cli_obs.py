"""CLI observability smoke: --trace/--metrics-out/--profile and trace export."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import validate_chrome_trace

A = "abcab" * 26
B = "acaba" * 26


def test_semilocal_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert (
        main(["semilocal", A, B, "--trace", str(trace), "--metrics-out", str(metrics)])
        == 0
    )
    capsys.readouterr()

    doc = json.loads(trace.read_text())
    names = validate_chrome_trace(doc)
    assert any(n.startswith("combing.") for n in names)
    assert "steady_ant.multiply" in names
    assert "phase:combing" in names

    mdoc = json.loads(metrics.read_text())
    assert mdoc["version"] == 1
    assert mdoc["metrics"]["steady_ant.multiplies"]["value"] > 0
    assert mdoc["metrics"]["combing.grid_leaves"]["value"] > 0
    assert "combing" in mdoc["phases"]


def test_profile_prints_phase_breakdown(capsys):
    assert main(["semilocal", A, B, "--profile"]) == 0
    err = capsys.readouterr().err
    assert "phase" in err and "combing" in err


def test_trace_export_round_trip(tmp_path, capsys):
    raw = tmp_path / "trace.jsonl"
    out = tmp_path / "exported.json"
    assert main(["semilocal", A, B, "--trace-raw", str(raw)]) == 0
    assert main(["trace", "export", str(raw), "-o", str(out)]) == 0
    capsys.readouterr()
    names = validate_chrome_trace(json.loads(out.read_text()))
    assert any(n.startswith("combing.") for n in names)
