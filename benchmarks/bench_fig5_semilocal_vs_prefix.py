"""Fig. 5: semi-local LCS vs standard prefix LCS, synthetic + genomes.

Paper result: iterative combing has running time comparable to standard
(prefix) LCS — semi-local comparison is practical; the branchless SIMD
inner loop gives 5.5-6x over the branching version, and the effect of
the optimizations is larger on semi-local LCS than on prefix LCS thanks
to better data locality.
"""

import pytest

from repro.bench.figures import (
    fig5_blend_ablation,
    fig5_real_genomes,
    fig5_semilocal_vs_prefix,
)
from repro.bench.harness import scaled
from repro.baselines.prefix_lcs import prefix_lcs_antidiag_simd, prefix_lcs_rowmajor
from repro.core.combing.iterative import iterative_combing_antidiag_simd
from repro.datasets.genomes import virus_pair
from repro.datasets.synthetic import synthetic_pair

ENGINES = {
    "prefix_rowmajor": prefix_lcs_rowmajor,
    "prefix_antidiag_simd": prefix_lcs_antidiag_simd,
    "semi_antidiag_simd": iterative_combing_antidiag_simd,
}


@pytest.fixture(scope="module")
def synthetic():
    n = scaled(6_000)
    return synthetic_pair(n, n, sigma=1.0, seed=11)


@pytest.fixture(scope="module")
def genomes():
    return virus_pair("phage-ms2", seed=11)


@pytest.mark.parametrize("engine", list(ENGINES), ids=str)
def test_synthetic_engines(benchmark, engine, synthetic):
    a, b = synthetic
    benchmark.group = "fig5 synthetic"
    benchmark.pedantic(ENGINES[engine], args=(a, b), rounds=2, iterations=1)


@pytest.mark.parametrize("engine", list(ENGINES), ids=str)
def test_genome_engines(benchmark, engine, genomes):
    a, b = genomes
    benchmark.group = "fig5 genomes"
    benchmark.pedantic(ENGINES[engine], args=(a, b), rounds=1, iterations=1)


def test_fig5_table(benchmark, print_table):
    table = benchmark.pedantic(
        lambda: fig5_semilocal_vs_prefix(repeats=1), rounds=1, iterations=1
    )
    print_table(table)
    for row in table.rows:
        n, t_prefix_rm, t_prefix_ad, t_semi, t_lb = row
        # the headline claim: semi-local combing within a small factor of
        # the standard prefix LCS baseline (paper: "comparable")
        assert t_semi < 10 * t_prefix_rm


def test_fig5_genomes_table(benchmark, print_table):
    table = benchmark.pedantic(lambda: fig5_real_genomes(repeats=1), rounds=1, iterations=1)
    print_table(table)
    assert table.rows


def test_fig5_blend_ablation_table(benchmark, print_table):
    table = benchmark.pedantic(lambda: fig5_blend_ablation(repeats=1), rounds=1, iterations=1)
    print_table(table)
    for row in table.rows:
        sigma, t_masked, t_where, t_arith, t_bitwise, t_16 = row
        # branchless full-write selects must not lose badly to masked writes
        assert t_where < 3 * t_masked
