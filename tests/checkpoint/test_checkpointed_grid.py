"""Crash/resume properties of checkpointed grid combing.

The acceptance property: interrupting a run after *any* prefix of
completed blocks and resuming in a new process yields a bit-identical
kernel — including when the interrupting fault is injected by
:class:`~repro.parallel.chaos.ChaosMachine` at a 20% rate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import GridCheckpointer, KernelStore
from repro.core.combing.hybrid import hybrid_combing_grid
from repro.core.combing.iterative import iterative_combing_rowmajor
from repro.core.combing.parallel import parallel_hybrid_combing_grid
from repro.parallel import (
    ChaosMachine,
    ChaosProcessDeath,
    FaultPolicy,
    ResilientMachine,
    SerialMachine,
    ThreadMachine,
)

from ..conftest import random_codes


class Interrupted(BaseException):
    """Stand-in for a crash: escapes the library like a real SIGKILL."""


def checkpointer(tmp_path, **kwargs):
    store = KernelStore(tmp_path / "store")
    # order-0 threshold: persist every compose, so tiny test grids
    # exercise the reduction-tree checkpoints too
    return store, GridCheckpointer(store, compose_min_order=0, **kwargs)


def interrupt_after(k):
    """An ``on_leaf`` callback raising after *k* completed leaves."""
    seen = []

    def on_leaf(m, n):
        seen.append((m, n))
        if len(seen) >= k:
            raise Interrupted(f"crash after {k} leaves")

    return on_leaf


codes = st.lists(st.integers(0, 3), min_size=1, max_size=24).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestSerialCheckpointing:
    def test_checkpointed_equals_plain(self, tmp_path, rng):
        a, b = random_codes(rng, 21), random_codes(rng, 17)
        _, ckpt = checkpointer(tmp_path)
        got = hybrid_combing_grid(a, b, 6, checkpoint=ckpt)
        assert np.array_equal(got, hybrid_combing_grid(a, b, 6))

    def test_completed_run_resumes_as_one_hit(self, tmp_path, rng):
        a, b = random_codes(rng, 21), random_codes(rng, 17)
        store, ckpt = checkpointer(tmp_path)
        first = hybrid_combing_grid(a, b, 6, checkpoint=ckpt)
        store2 = KernelStore(tmp_path / "store")
        got = hybrid_combing_grid(
            a, b, 6, checkpoint=GridCheckpointer(store2, compose_min_order=0)
        )
        assert np.array_equal(got, first)
        assert store2.stats() == {"hits": 1, "misses": 0, "corrupt": 0, "writes": 0, "evictions": 0}

    def test_resume_false_recomputes_everything(self, tmp_path, rng):
        a, b = random_codes(rng, 21), random_codes(rng, 17)
        store, ckpt = checkpointer(tmp_path)
        hybrid_combing_grid(a, b, 6, checkpoint=ckpt)
        store2 = KernelStore(tmp_path / "store")
        ckpt2 = GridCheckpointer(store2, compose_min_order=0, resume=False)
        hybrid_combing_grid(a, b, 6, checkpoint=ckpt2)
        assert store2.stats()["hits"] == 0
        assert store2.stats()["writes"] > 0

    def test_different_grid_shape_reuses_root(self, tmp_path, rng):
        """The root artifact is shape-independent: a resumed run with a
        different task count still short-circuits."""
        a, b = random_codes(rng, 21), random_codes(rng, 17)
        _, ckpt = checkpointer(tmp_path)
        first = hybrid_combing_grid(a, b, 4, checkpoint=ckpt)
        store2 = KernelStore(tmp_path / "store")
        got = hybrid_combing_grid(
            a, b, 9, checkpoint=GridCheckpointer(store2, compose_min_order=0)
        )
        assert np.array_equal(got, first)
        assert store2.stats()["hits"] == 1

    @settings(max_examples=25, deadline=None)
    @given(a=codes, b=codes, prefix=st.integers(0, 35))
    def test_crash_after_any_prefix_resumes_bit_identical(
        self, tmp_path_factory, a, b, prefix
    ):
        """THE acceptance property (serial path): crash after any prefix
        of completed leaves, resume, get the bit-identical kernel."""
        tmp_path = tmp_path_factory.mktemp("ckpt")
        reference = iterative_combing_rowmajor(a, b)
        store, ckpt = checkpointer(tmp_path)
        try:
            hybrid_combing_grid(
                a, b, 6, checkpoint=ckpt, on_leaf=interrupt_after(prefix + 1)
            )
        except Interrupted:
            ckpt.flush()
        store2 = KernelStore(tmp_path / "store")
        got = hybrid_combing_grid(
            a, b, 6, checkpoint=GridCheckpointer(store2, compose_min_order=0)
        )
        assert np.array_equal(got, reference)

    def test_resume_reuses_the_crashed_runs_work(self, tmp_path, rng):
        a, b = random_codes(rng, 24), random_codes(rng, 24)
        store, ckpt = checkpointer(tmp_path)
        with pytest.raises(Interrupted):
            hybrid_combing_grid(a, b, 9, checkpoint=ckpt, on_leaf=interrupt_after(4))
        assert store.stats()["writes"] >= 4
        store2 = KernelStore(tmp_path / "store")
        got = hybrid_combing_grid(
            a, b, 9, checkpoint=GridCheckpointer(store2, compose_min_order=0)
        )
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))
        assert store2.stats()["hits"] >= 4  # the crashed run's leaves


class TestParallelCheckpointing:
    def test_parallel_checkpointed_equals_reference(self, tmp_path, rng):
        a, b = random_codes(rng, 24), random_codes(rng, 20)
        _, ckpt = checkpointer(tmp_path)
        got = parallel_hybrid_combing_grid(
            a, b, SerialMachine(), n_tasks=6, checkpoint=ckpt
        )
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))

    def test_threads_checkpointed(self, tmp_path, rng):
        a, b = random_codes(rng, 24), random_codes(rng, 20)
        _, ckpt = checkpointer(tmp_path)
        got = parallel_hybrid_combing_grid(
            a, b, ThreadMachine(workers=3), n_tasks=6, checkpoint=ckpt
        )
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))

    def test_process_death_then_resume(self, tmp_path, rng):
        """ChaosProcessDeath rips through the resilience layer mid-run;
        the next process resumes from the store, bit-identical."""
        a, b = random_codes(rng, 28), random_codes(rng, 28)
        store, ckpt = checkpointer(tmp_path)
        machine = ResilientMachine(
            ChaosMachine(SerialMachine(), abort_after=3, seed=1),
            FaultPolicy(max_retries=2),
            sleep=lambda s: None,
        )
        with pytest.raises(ChaosProcessDeath):
            parallel_hybrid_combing_grid(a, b, machine, n_tasks=9, checkpoint=ckpt)
        ckpt.flush()
        assert store.stats()["writes"] >= 3
        store2 = KernelStore(tmp_path / "store")
        got = parallel_hybrid_combing_grid(
            a,
            b,
            SerialMachine(),
            n_tasks=9,
            checkpoint=GridCheckpointer(store2, compose_min_order=0),
        )
        assert np.array_equal(got, iterative_combing_rowmajor(a, b))
        assert store2.stats()["hits"] >= 3

    @settings(max_examples=10, deadline=None)
    @given(a=codes, b=codes, abort_after=st.integers(0, 20), seed=st.integers(0, 99))
    def test_chaotic_crash_resume_property(self, tmp_path_factory, a, b, abort_after, seed):
        """THE acceptance property under fault injection: a run that
        dies after any number of completed tasks — while also suffering
        20% injected task failures — resumes bit-identical under a
        further 20% fault rate."""
        tmp_path = tmp_path_factory.mktemp("chaos")
        reference = iterative_combing_rowmajor(a, b)
        store, ckpt = checkpointer(tmp_path)
        machine = ResilientMachine(
            ChaosMachine(SerialMachine(), fail_rate=0.2, abort_after=abort_after, seed=seed),
            FaultPolicy(max_retries=4),
            sleep=lambda s: None,
        )
        try:
            parallel_hybrid_combing_grid(a, b, machine, n_tasks=6, checkpoint=ckpt)
        except ChaosProcessDeath:
            ckpt.flush()
        store2 = KernelStore(tmp_path / "store")
        resume_machine = ResilientMachine(
            ChaosMachine(SerialMachine(), fail_rate=0.2, seed=seed + 1),
            FaultPolicy(max_retries=4),
            sleep=lambda s: None,
        )
        got = parallel_hybrid_combing_grid(
            a,
            b,
            resume_machine,
            n_tasks=6,
            checkpoint=GridCheckpointer(store2, compose_min_order=0),
        )
        assert np.array_equal(got, reference)

    def test_durable_recovery_reads_disk_not_recompute(self, tmp_path, rng):
        """After a failed round, ResilientMachine recovers tasks that
        already persisted by re-reading the ledger (durable_recoveries),
        not by re-running them."""
        from repro.checkpoint import CheckpointedThunk

        store = KernelStore(tmp_path / "store")
        perm = np.array([2, 0, 3, 1], dtype=np.int64)
        key = store.key(np.arange(2), np.arange(2), "algo")
        store.put(key, perm, algorithm="algo", m=2, n=2)

        def explode():
            raise RuntimeError("task always fails in-process")

        # read=False: the thunk cannot take the cache-hit path up front,
        # so only recover() can save it
        thunk = CheckpointedThunk(
            store, key, explode, algorithm="algo", m=2, n=2, read=False
        )
        machine = ResilientMachine(
            SerialMachine(), FaultPolicy(max_retries=1), sleep=lambda s: None
        )
        (got,) = machine.run_round([thunk])
        assert np.array_equal(got, perm)
        assert machine.durable_recoveries == 1

    def test_unpersisted_task_still_retries_normally(self, tmp_path):
        from repro.checkpoint import CheckpointedThunk

        store = KernelStore(tmp_path / "store")
        key = store.key(np.arange(2), np.arange(2), "algo")
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return np.array([2, 0, 3, 1], dtype=np.int64)

        thunk = CheckpointedThunk(store, key, flaky, algorithm="algo", m=2, n=2)
        machine = ResilientMachine(
            SerialMachine(), FaultPolicy(max_retries=2), sleep=lambda s: None
        )
        (got,) = machine.run_round([thunk])
        assert got is not None and machine.durable_recoveries == 0
        assert len(calls) == 2
