"""Tests for time-series motif search."""

import numpy as np
import pytest

from repro.apps.motifs import discretize, find_motif, motif_profile


def wave(n, freq=1.0, phase=0.0):
    t = np.linspace(0, 2 * np.pi, n)
    return np.sin(freq * t + phase)


class TestDiscretize:
    def test_alphabet_size(self):
        s = discretize(np.random.default_rng(0).normal(size=1000), levels=4)
        assert set(np.unique(s).tolist()) <= {0, 1, 2, 3}

    def test_scale_invariance(self):
        x = wave(200)
        assert np.array_equal(discretize(x), discretize(5 * x + 100))

    def test_constant_series(self):
        s = discretize(np.ones(10), levels=4)
        assert len(set(s.tolist())) == 1

    def test_empty(self):
        assert discretize(np.array([]), levels=3).size == 0

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            discretize(np.ones(5), levels=1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            discretize(np.ones((2, 2)))


class TestMotifSearch:
    def test_planted_motif_found(self):
        rng = np.random.default_rng(1)
        motif = wave(40, freq=3.0)
        series = np.concatenate([rng.normal(size=100) * 0.3, motif, rng.normal(size=100) * 0.3])
        # the global z-normalization of the long series shifts bin edges
        # relative to the motif's own normalization, so the planted copy
        # scores ~0.78 rather than 1.0
        matches = find_motif(series, motif, min_similarity=0.7)
        assert matches
        best = max(matches, key=lambda m: m.score)
        assert abs(best.start - 100) < 12

    def test_profile_peak_at_plant(self):
        rng = np.random.default_rng(2)
        motif = wave(30, freq=2.0)
        series = np.concatenate([rng.normal(size=60), motif, rng.normal(size=60)])
        profile = motif_profile(series, motif)
        assert 50 <= int(np.argmax(profile)) <= 70

    def test_no_match_in_noise(self):
        rng = np.random.default_rng(3)
        motif = wave(30, freq=5.0)
        series = rng.normal(size=300)
        matches = find_motif(series, motif, min_similarity=0.99)
        assert matches == []
